//! # flux_shard
//!
//! A parallel sharded streaming pipeline for multi-core event throughput.
//!
//! The FluXQuery stack treats the event stream as a single sequential
//! source; this crate parallelises the expensive part — parsing — while
//! keeping every consumer-visible property of the sequential reader:
//!
//! 1. **Split.** [`splitter::split_points`] scans the input buffer with
//!    the SWAR kernel and places chunk boundaries on safe element-tag `<`
//!    positions (never inside comments, CDATA, PIs or DOCTYPEs). Because
//!    boundaries sit on element tags, no token or text run ever straddles
//!    a seam.
//! 2. **Parse.** One fragment-mode [`flux_xml::XmlReader`] per chunk runs
//!    on its own `std::thread`, each seeded with a clone of the shared
//!    [`SymbolTable`] (clones preserve indices, so symbols agree across
//!    shards without renaming). Each worker records its chunk onto a
//!    [`flux_xml::EventTape`] — every payload byte materialised exactly
//!    once — and hands the finished tape to the consumer through a
//!    bounded channel *as soon as it is done*.
//! 3. **Replay, pipelined.** [`ShardedReader::advance`] replays shard
//!    *i*'s tape while workers are still parsing shards *i+1..N*
//!    ([`ReplayMode::Pipelined`], the default) — so XSAX validation and
//!    query evaluation overlap parsing instead of waiting behind a join
//!    barrier. Replay is **zero-copy**: [`ShardedReader::view`] serves
//!    [`RawEventRef`] views whose payloads borrow the tape arena, so the
//!    serial per-event term that bounded speedup at `1/(1/N + r)` is span
//!    arithmetic, not a byte copy.
//! 4. **Re-check.** Replay re-checks everything the fragment readers
//!    relaxed — global tag balance against one running stack, single
//!    root, no top-level text, DOCTYPE position, the depth limit — so the
//!    merged stream is event-for-event the sequential one, and errors are
//!    raised **at the same point in the stream**: the valid prefix is
//!    delivered first, then the error, with a position composed from the
//!    per-event positions the workers recorded (byte-exact for offset,
//!    line and column). Downstream,
//!    `flux_xsax::XsaxParser::from_source` consumes this stream and
//!    carries its content-model DFA configuration across every shard seam
//!    — the single piece of cross-shard state — so validation verdicts,
//!    error positions and on-first fire points stay exactly sequential.
//!
//! The trade-off is explicit: sharding buffers the whole input (plus up to
//! N in-flight shard tapes), trading the sequential reader's token-bounded
//! memory for wall-clock throughput. Use it when the input is already a
//! byte buffer and cores are idle; stay sequential for unbounded streams.

pub mod splitter;
mod worker;

use flux_symbols::{Symbol, SymbolTable};
use flux_telemetry::{
    Journal, ReaderCounters, RunReport, ScanCounters, ShardLane, Stage, Stopwatch,
};
use flux_xml::{
    EventSource, Position, RawEvent, RawEventKind, RawEventRef, ReaderConfig, Result, SymbolRemap,
    XmlError,
};
use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use worker::{parse_fragment, ShardTape};

/// When the consumer gets to see a finished shard tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// Replay shard *i* as soon as its tape arrives, while workers still
    /// parse shards *i+1..N* — validation overlaps parsing and the replay
    /// cost hides behind the parallel parse.
    #[default]
    Pipelined,
    /// Wait for every worker before replaying anything (the join-then-
    /// replay barrier, kept for equivalence testing and benchmarking).
    /// The event stream, errors and positions are identical to
    /// [`ReplayMode::Pipelined`]; only the overlap differs.
    Joined,
}

/// Configuration for [`ShardedReader`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested number of shards. The effective count may be lower when
    /// the input is small ([`ShardConfig::min_shard_bytes`]) or offers too
    /// few safe boundaries; `1` degenerates to a sequential fragment parse.
    pub shards: usize,
    /// Emit comment events (mirrors [`ReaderConfig::emit_comments`]).
    pub emit_comments: bool,
    /// Emit processing-instruction events.
    pub emit_processing_instructions: bool,
    /// Hard limit on element nesting depth, enforced globally at replay
    /// exactly like the sequential reader enforces it.
    pub max_depth: usize,
    /// Do not split below this many bytes per shard; tiny inputs are not
    /// worth the thread fan-out.
    pub min_shard_bytes: usize,
    /// Pipelined (default) or join-then-replay consumption.
    pub mode: ReplayMode,
    /// Cap on the **merged** symbol table (the sharded analogue of
    /// [`ReaderConfig::max_symbols`]; default `None`). Workers intern
    /// unboundedly — their tables are bounded by chunk content and die
    /// with the shard — but the long-lived consumer table stops growing
    /// at the cap: merged names past it travel as
    /// [`SymbolTable::OVERFLOW`] plus the literal spelling, exactly like
    /// the sequential reader's bounded mode.
    pub max_symbols: Option<usize>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        )
    }
}

impl ShardConfig {
    /// A configuration requesting `shards` parallel shards.
    pub fn new(shards: usize) -> Self {
        ShardConfig {
            shards: shards.max(1),
            emit_comments: false,
            emit_processing_instructions: false,
            max_depth: ReaderConfig::default().max_depth,
            min_shard_bytes: 16 * 1024,
            mode: ReplayMode::default(),
            max_symbols: None,
        }
    }

    fn reader_config(&self) -> ReaderConfig {
        ReaderConfig {
            emit_comments: self.emit_comments,
            emit_processing_instructions: self.emit_processing_instructions,
            // Local depth can only underestimate global depth; the exact
            // global limit is enforced at replay.
            max_depth: self.max_depth,
            max_symbols: None,
            fragment: true,
        }
    }
}

/// Composes a chunk-local position onto the global position of the chunk
/// start: offsets add; lines add (both 1-based); a column on the chunk's
/// first line continues the base line's column.
fn compose(base: Position, local: Position) -> Position {
    Position {
        offset: base.offset + local.offset,
        line: base.line + local.line - 1,
        column: if local.line == 1 {
            base.column + local.column - 1
        } else {
            local.column
        },
    }
}

/// Shifts a worker's chunk-local error to the global position.
fn compose_error(err: XmlError, base: Position) -> XmlError {
    match err {
        XmlError::UnexpectedEof { expected, pos } => XmlError::UnexpectedEof {
            expected,
            pos: compose(base, pos),
        },
        XmlError::Syntax { message, pos } => XmlError::Syntax {
            message,
            pos: compose(base, pos),
        },
        XmlError::WellFormedness { message, pos } => XmlError::WellFormedness {
            message,
            pos: compose(base, pos),
        },
        XmlError::UnknownEntity { name, pos } => XmlError::UnknownEntity {
            name,
            pos: compose(base, pos),
        },
        XmlError::InvalidUtf8 { pos } => XmlError::InvalidUtf8 {
            pos: compose(base, pos),
        },
        other => other,
    }
}

/// The shard currently being replayed.
struct ActiveShard {
    shard: ShardTape,
    /// Merged-table symbols for shard-local indices past the seed prefix.
    remap: Vec<Symbol>,
    /// Global position of this chunk's first byte.
    base: Position,
    /// Replay cursor into the tape.
    next_event: usize,
    /// Epoch-relative instant replay of this shard began (always 0 when
    /// telemetry is off).
    activated_at_ns: u64,
}

/// What [`ShardedReader::view`] currently shows.
enum CurrentEvent {
    /// Nothing delivered yet.
    None,
    /// A synthesised document bracket.
    Synthetic(RawEventKind),
    /// The event at `active.next_event - 1`.
    Tape,
}

/// A parallel drop-in for [`flux_xml::XmlReader`] over an in-memory
/// document: same [`EventSource`] pull contract, same event sequence, same
/// verdicts and error positions — parsed by N threads.
///
/// The first [`ShardedReader::advance`] splits the input and launches the
/// workers; every later advance replays the next tape event (zero-copy)
/// and re-checks the document-level rules. In
/// [`ReplayMode::Pipelined`] the consumer streams shard *i* while shards
/// *i+1..N* are still parsing, so on invalid input the valid prefix is
/// delivered first and the error surfaces at the same stream point — and,
/// thanks to per-event recorded positions, with the same offset, line and
/// column — as the sequential reader's. Errors are terminal: after
/// returning one, the reader reports end of stream.
pub struct ShardedReader {
    input: Arc<Vec<u8>>,
    config: ShardConfig,
    symbols: SymbolTable,
    seed_len: usize,
    started: bool,
    total_shards: usize,
    /// Live while workers may still deliver tapes.
    rx: Option<Receiver<(usize, ShardTape)>>,
    /// Tapes that arrived ahead of replay order.
    parked: BTreeMap<usize, ShardTape>,
    /// Index of the next shard to replay.
    next_shard: usize,
    active: Option<ActiveShard>,
    /// Global position where the next chunk starts.
    chunk_base: Position,
    // Replay state: the document-level rules the fragments relaxed.
    emitted_start: bool,
    finished: bool,
    /// Open elements across the whole document — replay re-checks tag
    /// balance exactly like the sequential reader, at the same events.
    stack: Vec<Symbol>,
    /// Literal names of open elements whose merged symbol is
    /// [`SymbolTable::OVERFLOW`] (bounded merged table), innermost last —
    /// mirrors the sequential reader's overflow stack so two overflowed
    /// names only balance when their spellings agree.
    overflow_stack: Vec<String>,
    root_seen: bool,
    root_done: bool,
    /// Recorded position of the most recently delivered event.
    last_pos: Position,
    current: CurrentEvent,
    // Telemetry (every field below is zero-sized or empty when the
    // `telemetry` feature is off).
    /// The pipeline epoch: copies go to every worker so all timeline
    /// points read off one monotonic axis. Reset when workers launch.
    epoch: Stopwatch,
    /// Completed shard lanes, in replay order.
    lanes: Vec<ShardLane>,
    /// Scanner counters merged across exhausted shards.
    scan_tel: ScanCounters,
    /// Reader counters merged across exhausted shards.
    reader_tel: ReaderCounters,
    /// Pipeline lifecycle journal (activations, exhaustions).
    journal: Journal,
}

const START_POS: Position = Position {
    offset: 0,
    line: 1,
    column: 1,
};

impl ShardedReader {
    /// Creates a sharded reader over `input` with a fresh symbol table.
    pub fn new(input: Vec<u8>, config: ShardConfig) -> Self {
        Self::with_symbols(input, config, SymbolTable::new())
    }

    /// Creates a sharded reader whose interner is seeded with `symbols` —
    /// the sharded analogue of [`flux_xml::XmlReader::with_symbols`]. Seed
    /// with `flux_xsax::seeded_symbols(&dtd)` to feed
    /// `XsaxParser::from_source`.
    pub fn with_symbols(input: Vec<u8>, config: ShardConfig, symbols: SymbolTable) -> Self {
        let seed_len = symbols.len();
        ShardedReader {
            input: Arc::new(input),
            config,
            symbols,
            seed_len,
            started: false,
            total_shards: 0,
            rx: None,
            parked: BTreeMap::new(),
            next_shard: 0,
            active: None,
            chunk_base: START_POS,
            emitted_start: false,
            finished: false,
            stack: Vec::new(),
            overflow_stack: Vec::new(),
            root_seen: false,
            root_done: false,
            last_pos: START_POS,
            current: CurrentEvent::None,
            epoch: Stopwatch::start(),
            lanes: Vec::new(),
            scan_tel: ScanCounters::default(),
            reader_tel: ReaderCounters::default(),
            journal: Journal::default(),
        }
    }

    /// Slurps `src` and shards it. Sharding requires the whole buffer (the
    /// splitter needs random access), so this constructor is explicit
    /// about the memory trade-off.
    pub fn from_reader(mut src: impl std::io::Read, config: ShardConfig) -> Result<Self> {
        let mut input = Vec::new();
        src.read_to_end(&mut input)?;
        Ok(Self::new(input, config))
    }

    /// The shared symbol table: seed symbols plus every name the shards
    /// encountered, re-interned into one namespace (merged shard by shard
    /// as replay reaches them).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of shards actually used. Zero until the first pull (the
    /// parallel parse launches lazily).
    pub fn shard_count(&self) -> usize {
        self.total_shards
    }

    /// The recorded source position of the most recently delivered event —
    /// exactly the position the sequential reader would report at the same
    /// point in the stream (offset, line and column).
    pub fn position(&self) -> Position {
        self.last_pos
    }

    /// Splits the input, launches one parsing thread per chunk `1..N`, and
    /// parses chunk `0` on the current thread — the consumer cannot replay
    /// anything before chunk 0's tape exists, so parsing it inline wastes
    /// no overlap (and a single-shard run stays thread- and channel-free).
    /// Workers send finished tapes over a channel sized to the shard
    /// count, so no worker ever blocks on a slow consumer.
    fn start_workers(&mut self) {
        self.started = true;
        let max_by_size = (self.input.len() / self.config.min_shard_bytes.max(1)).max(1);
        let requested = self.config.shards.clamp(1, max_by_size);
        let points = splitter::split_points(&self.input, requested);
        self.total_shards = points.len();
        // The epoch starts when the pipeline does; telemetry stores are
        // preallocated here, before any replay, so the steady state
        // allocates nothing (all of this folds away when telemetry is
        // off: the stopwatch reads no clock and the vectors hold ZSTs).
        self.epoch = Stopwatch::start();
        self.lanes = Vec::with_capacity(self.total_shards);
        self.journal = Journal::with_capacity(2 * self.total_shards + 2);
        let reader_config = self.config.reader_config();
        let (tx, rx) = sync_channel(points.len());
        for (i, &start) in points.iter().enumerate().skip(1) {
            let end = points.get(i + 1).copied().unwrap_or(self.input.len());
            let input = Arc::clone(&self.input);
            let seed = self.symbols.clone();
            let cfg = reader_config.clone();
            let tx = tx.clone();
            let epoch = self.epoch;
            std::thread::spawn(move || {
                let tape = parse_fragment(&input[start..end], &cfg, &seed, epoch);
                // The consumer may have been dropped; parsing work is
                // simply discarded then.
                let _ = tx.send((i, tape));
            });
        }
        drop(tx);
        self.rx = Some(rx);
        let end = points.get(1).copied().unwrap_or(self.input.len());
        let tape0 = parse_fragment(
            &self.input[..end],
            &reader_config,
            &self.symbols,
            self.epoch,
        );
        self.parked.insert(0, tape0);
    }

    /// Blocks until shard `index`'s tape is available. Out-of-order
    /// arrivals are parked; [`ReplayMode::Joined`] drains every worker
    /// first (the barrier).
    ///
    /// Telemetry: the blocking-receive time (including the Joined drain)
    /// is charged to the requested shard's lane, and the channel-dwell
    /// span (tape ready → this pickup) is stamped from the shared epoch.
    fn take_shard(&mut self, index: usize) -> ShardTape {
        let wait = Stopwatch::start();
        let mut stalls = 0u64;
        if self.config.mode == ReplayMode::Joined {
            if let Some(rx) = self.rx.take() {
                stalls += 1;
                while let Ok((i, tape)) = rx.recv() {
                    self.parked.insert(i, tape);
                }
            }
        }
        loop {
            if let Some(mut tape) = self.parked.remove(&index) {
                tape.lane.recv_stall_ns(wait.elapsed_ns());
                tape.lane.recv_stalls(stalls);
                tape.lane
                    .dwell_ns(self.epoch.elapsed_ns().saturating_sub(tape.ready_at_ns));
                return tape;
            }
            match self.rx.as_ref().map(|rx| rx.recv()) {
                Some(Ok((i, tape))) => {
                    stalls += 1;
                    self.parked.insert(i, tape);
                }
                // All senders gone yet the shard never arrived: a worker
                // died without delivering.
                _ => panic!("shard worker panicked"),
            }
        }
    }

    fn wf(&self, message: impl Into<String>, pos: Position) -> XmlError {
        XmlError::WellFormedness {
            message: message.into(),
            pos,
        }
    }

    /// Advances `pos` over literal whitespace in the original input with
    /// the sequential scanner's accounting — the skip the prolog/epilog
    /// state performs before rejecting top-level character data. Replaying
    /// it here keeps the merger's error byte-exact even when the offending
    /// text run starts with whitespace (or whitespace produced by entities,
    /// which the scanner does *not* skip: only literal bytes qualify).
    fn skip_input_whitespace(&self, mut pos: Position) -> Position {
        while let Some(&b) = self.input.get(pos.offset as usize) {
            if !matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                break;
            }
            pos.offset += 1;
            if b == b'\n' {
                pos.line += 1;
                pos.column = 1;
            } else {
                pos.column += 1;
            }
        }
        pos
    }

    /// Advances to the next replayed event — the zero-copy pull API. The
    /// first call launches the parallel parse.
    pub fn advance(&mut self) -> Result<bool> {
        if self.finished {
            return Ok(false);
        }
        if !self.started {
            self.start_workers();
        }
        if !self.emitted_start {
            self.emitted_start = true;
            self.current = CurrentEvent::Synthetic(RawEventKind::StartDocument);
            return Ok(true);
        }
        loop {
            if self.active.is_none() {
                if self.next_shard >= self.total_shards {
                    // End of the tape: the epilog checks.
                    self.finished = true;
                    self.last_pos = self.chunk_base;
                    if !self.root_seen {
                        return Err(XmlError::UnexpectedEof {
                            expected: "root element",
                            pos: self.chunk_base,
                        });
                    }
                    if !self.stack.is_empty() {
                        return Err(XmlError::UnexpectedEof {
                            expected: "closing tags for open elements",
                            pos: self.chunk_base,
                        });
                    }
                    self.current = CurrentEvent::Synthetic(RawEventKind::EndDocument);
                    return Ok(true);
                }
                let shard = self.take_shard(self.next_shard);
                self.journal
                    .record("shard_activated", self.next_shard as u64);
                self.next_shard += 1;
                // Merge shard-local names into the shared namespace; the
                // remap makes every replayed symbol a merged-table symbol.
                // In bounded mode the merged table stops growing at the
                // cap; overflowed entries resolve through the remap's
                // literal-name list at view time.
                let remap: Vec<Symbol> = shard
                    .new_names
                    .iter()
                    .map(|n| match self.config.max_symbols {
                        None => self.symbols.intern(n),
                        Some(cap) => self.symbols.intern_bounded(n, cap),
                    })
                    .collect();
                self.active = Some(ActiveShard {
                    shard,
                    remap,
                    base: self.chunk_base,
                    next_event: 0,
                    activated_at_ns: self.epoch.elapsed_ns(),
                });
            }

            // Tape exhausted: surface the shard's terminal error (after
            // its valid prefix — the sequential delivery order) or move to
            // the next chunk.
            let exhausted = {
                let a = self.active.as_ref().expect("active shard ensured");
                a.next_event >= a.shard.tape.len()
            };
            if exhausted {
                let mut a = self.active.take().expect("active shard ensured");
                // Close this shard's lane: replay span, then fold its
                // counters into the pipeline totals (merge-at-join).
                a.shard
                    .lane
                    .replay_ns(self.epoch.elapsed_ns().saturating_sub(a.activated_at_ns));
                self.scan_tel.merge(&a.shard.scan);
                self.reader_tel.merge(&a.shard.reader);
                self.lanes.push(a.shard.lane);
                self.journal
                    .record("shard_exhausted", (self.next_shard - 1) as u64);
                if let Some(err) = a.shard.error.take() {
                    self.finished = true;
                    return Err(compose_error(err, a.base));
                }
                self.chunk_base = compose(a.base, a.shard.end_pos);
                continue;
            }

            let (i, kind, pos, start, name, literal) = {
                let a = self.active.as_mut().expect("active shard ensured");
                let i = a.next_event;
                a.next_event += 1;
                let kind = a.shard.tape.kind(i);
                // Resolved lazily enough: only element events use it.
                let name = SymbolRemap::new(self.seed_len, &a.remap).resolve(a.shard.tape.name(i));
                // An element name the bounded merged table overflowed: its
                // literal spelling (the view's side channel) feeds the
                // balance check and error messages below.
                let literal = if name == SymbolTable::OVERFLOW
                    && matches!(kind, RawEventKind::StartElement | RawEventKind::EndElement)
                {
                    let v = a.shard.tape.view(
                        i,
                        SymbolRemap::with_names(self.seed_len, &a.remap, &a.shard.new_names),
                    );
                    Some(v.target().to_string())
                } else {
                    None
                };
                (
                    i,
                    kind,
                    compose(a.base, a.shard.tape.position(i)),
                    compose(a.base, a.shard.tape.start_position(i)),
                    name,
                    literal,
                )
            };
            // Re-check the document-level rules the fragment readers
            // relaxed, at exactly the event where the sequential reader
            // checks them.
            match kind {
                RawEventKind::StartElement | RawEventKind::EndElement => {
                    if kind == RawEventKind::StartElement {
                        if self.stack.is_empty() && self.root_done {
                            self.finished = true;
                            // The sequential reader rejects a second root
                            // before consuming any of its tag: error at the
                            // construct's first byte.
                            return Err(self.wf("multiple root elements", start));
                        }
                        if self.stack.len() >= self.config.max_depth {
                            self.finished = true;
                            let message = format!(
                                "element nesting deeper than the configured limit of {}",
                                self.config.max_depth
                            );
                            return Err(self.wf(message, pos));
                        }
                        if name == SymbolTable::OVERFLOW {
                            self.overflow_stack
                                .push(literal.clone().unwrap_or_default());
                        }
                        self.stack.push(name);
                        self.root_seen = true;
                    } else {
                        // Global tag balance, checked at the end tag just
                        // like the sequential reader. Two overflowed names
                        // only match when their literal spellings agree.
                        let found = literal.as_deref();
                        match self.stack.pop() {
                            Some(open) if open == name => {
                                if name == SymbolTable::OVERFLOW {
                                    let open_lit =
                                        self.overflow_stack.pop().expect("overflow name on stack");
                                    let found = found.unwrap_or_default();
                                    if open_lit != found {
                                        self.finished = true;
                                        let message = format!(
                                            "mismatched end tag: expected </{open_lit}>, found </{found}>"
                                        );
                                        return Err(self.wf(message, pos));
                                    }
                                }
                            }
                            Some(open) => {
                                self.finished = true;
                                let open_name = if open == SymbolTable::OVERFLOW {
                                    self.overflow_stack.pop().expect("overflow name on stack")
                                } else {
                                    self.symbols.name(open).to_string()
                                };
                                let message = format!(
                                    "mismatched end tag: expected </{}>, found </{}>",
                                    open_name,
                                    found.unwrap_or_else(|| self.symbols.name(name))
                                );
                                return Err(self.wf(message, pos));
                            }
                            None => {
                                self.finished = true;
                                let message = format!(
                                    "end tag </{}> with no open element",
                                    found.unwrap_or_else(|| self.symbols.name(name))
                                );
                                return Err(self.wf(message, pos));
                            }
                        }
                        if self.stack.is_empty() {
                            self.root_done = true;
                        }
                    }
                }
                RawEventKind::Text if !self.stack.is_empty() => {
                    // A final-shard text run that consumed the input right
                    // up to end-of-file (recorded position == chunk end;
                    // trailing suppressed comments/PIs would have moved the
                    // end past it, and a trailing parse error voids the
                    // comparison). With elements still open, the sequential
                    // reader raises the unclosed-elements error *without*
                    // delivering the run — the fragment worker delivered it
                    // only because more input could have followed in a next
                    // chunk, and there is none. Suppress it so the partial
                    // stream stays byte-exact sequential.
                    let trailing_at_eof = self.next_shard >= self.total_shards && {
                        let a = self.active.as_ref().expect("active shard ensured");
                        a.next_event >= a.shard.tape.len()
                            && a.shard.error.is_none()
                            && a.shard.tape.position(i).offset == a.shard.end_pos.offset
                    };
                    if trailing_at_eof {
                        self.finished = true;
                        let a = self.active.as_ref().expect("active shard ensured");
                        return Err(XmlError::UnexpectedEof {
                            expected: "closing tags for open elements",
                            pos: compose(a.base, a.shard.end_pos),
                        });
                    }
                }
                RawEventKind::Text if self.stack.is_empty() => {
                    let (whitespace, synthetic) = {
                        let a = self.active.as_ref().expect("active shard ensured");
                        let v = a.shard.tape.view(
                            i,
                            SymbolRemap::with_names(self.seed_len, &a.remap, &a.shard.new_names),
                        );
                        (v.is_whitespace_text(), v.is_text_synthetic())
                    };
                    if whitespace && !synthetic {
                        // Literal prolog/epilog whitespace: the sequential
                        // reader skips it silently. Whitespace produced by
                        // entity references or CDATA does NOT qualify —
                        // sequentially that is character data outside the
                        // root, an error.
                        continue;
                    }
                    self.finished = true;
                    let message = if self.root_seen {
                        "character data after the root element"
                    } else {
                        "character data before the root element"
                    };
                    // The sequential prolog/epilog state skips literal
                    // whitespace and errors at the first byte it cannot:
                    // replay that skip over the original input.
                    let at = self.skip_input_whitespace(start);
                    return Err(self.wf(message, at));
                }
                RawEventKind::DoctypeDecl if self.root_seen => {
                    self.finished = true;
                    // Rejected at the `<` of `<!DOCTYPE`, like the
                    // sequential reader.
                    return Err(self.wf(
                        "DOCTYPE declaration after the root element has started",
                        start,
                    ));
                }
                _ => {}
            }
            self.last_pos = pos;
            self.current = CurrentEvent::Tape;
            return Ok(true);
        }
    }

    /// A zero-copy view of the event the last [`ShardedReader::advance`]
    /// produced: payloads borrow the shard's tape arena. After `advance`
    /// returned `Ok(false)` or an error, the view is a payload-free
    /// placeholder — never a panic.
    pub fn view(&self) -> RawEventRef<'_> {
        match self.current {
            CurrentEvent::Synthetic(kind) => RawEventRef::bare(kind),
            CurrentEvent::Tape => match self.active.as_ref() {
                Some(a) => a.shard.tape.view(
                    a.next_event - 1,
                    SymbolRemap::with_names(self.seed_len, &a.remap, &a.shard.new_names),
                ),
                // A terminal error already dropped the shard.
                None => RawEventRef::bare(RawEventKind::EndDocument),
            },
            CurrentEvent::None => RawEventRef::bare(RawEventKind::StartDocument),
        }
    }

    /// Pulls the next event into the caller-owned `ev` — the copying
    /// compatibility wrapper over [`ShardedReader::advance`] /
    /// [`ShardedReader::view`].
    pub fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        <Self as EventSource>::next_into(self, ev)
    }

    /// Appends the merged `scanner`/`reader` stages and the
    /// `shard_pipeline` timeline (one child stage per shard lane, plus
    /// the lifecycle journal) to `report`. Stages are appended empty when
    /// the `telemetry` feature is off, so the report shape is stable.
    pub fn report_into(&self, report: &mut RunReport) {
        let mut scanner = Stage::new("scanner");
        scanner.note("isa", flux_xml::active_isa_name());
        scanner.absorb(self.scan_tel.snapshot());
        report.stage(scanner);
        let mut reader = Stage::new("reader");
        reader.absorb(self.reader_tel.snapshot());
        report.stage(reader);
        let mut pipeline = Stage::new("shard_pipeline");
        pipeline.counter("shards", self.total_shards as u64);
        pipeline.note("mode", format!("{:?}", self.config.mode));
        let mut totals = ShardLane::default();
        for lane in &self.lanes {
            totals.merge(lane);
        }
        pipeline.absorb(totals.snapshot());
        for (i, lane) in self.lanes.iter().enumerate() {
            let mut child = Stage::new(format!("shard_{i}"));
            child.absorb(lane.snapshot());
            pipeline.children.push(child);
        }
        for ev in self.journal.events() {
            pipeline.events.push((ev.seq, ev.tag, ev.value));
        }
        report.stage(pipeline);
    }

    /// The completed per-shard timeline lanes (replay order). Empty until
    /// shards are exhausted, and with telemetry off each lane is a
    /// zero-sized stub — intended for tests and the report builder.
    pub fn lanes(&self) -> &[ShardLane] {
        &self.lanes
    }

    /// The merged scanner counters across exhausted shards.
    pub fn scan_telemetry(&self) -> ScanCounters {
        self.scan_tel
    }

    /// The merged reader counters across exhausted shards.
    pub fn reader_telemetry(&self) -> ReaderCounters {
        self.reader_tel
    }
}

impl EventSource for ShardedReader {
    fn advance(&mut self) -> Result<bool> {
        ShardedReader::advance(self)
    }

    fn view(&self) -> RawEventRef<'_> {
        ShardedReader::view(self)
    }

    fn symbols(&self) -> &SymbolTable {
        ShardedReader::symbols(self)
    }

    fn position(&self) -> Position {
        ShardedReader::position(self)
    }

    fn report_into(&self, report: &mut RunReport) {
        ShardedReader::report_into(self, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_xml::{parse_to_events, XmlEvent};

    /// Collects the owned events a sharded reader produces.
    fn sharded_events_mode(doc: &str, shards: usize, mode: ReplayMode) -> Result<Vec<XmlEvent>> {
        // min_shard_bytes = 1 so even tiny unit-test documents shard.
        let mut config = ShardConfig::new(shards);
        config.min_shard_bytes = 1;
        config.mode = mode;
        let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
        let mut ev = RawEvent::new();
        let mut out = Vec::new();
        while reader.next_into(&mut ev)? {
            out.push(ev.to_xml_event(reader.symbols()));
        }
        Ok(out)
    }

    fn assert_equivalent(doc: &str, shards: usize) {
        let sequential = parse_to_events(doc).expect("sequential parse");
        for mode in [ReplayMode::Pipelined, ReplayMode::Joined] {
            let sharded = sharded_events_mode(doc, shards, mode).expect("sharded parse");
            assert_eq!(
                sequential, sharded,
                "doc: {doc}, shards: {shards}, mode: {mode:?}"
            );
        }
    }

    #[test]
    fn matches_sequential_events_small_docs() {
        let docs = [
            "<a/>",
            "<a><b>text</b><c/></a>",
            "<bib><book year=\"1994\"><title>T &amp; U</title></book><book/></bib>",
            "  <r>one<x/>two<y>three</y></r>  ",
            "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]><r><s/></r>",
        ];
        for doc in docs {
            for shards in [1, 2, 3, 8] {
                assert_equivalent(doc, shards);
            }
        }
    }

    #[test]
    fn matches_sequential_on_deep_nesting_across_seams() {
        // Elements that straddle several shard boundaries.
        let mut doc = String::new();
        for i in 0..40 {
            doc.push_str(&format!("<d{i}>filler text to widen the chunk "));
        }
        for i in (0..40).rev() {
            doc.push_str(&format!("</d{i}>"));
        }
        for shards in [2, 3, 8] {
            assert_equivalent(&doc, shards);
        }
    }

    #[test]
    fn shard_count_reported_after_first_pull() {
        let doc = "<a>".to_string() + &"<b>x</b>".repeat(500) + "</a>";
        let mut config = ShardConfig::new(4);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(doc.into_bytes(), config);
        assert_eq!(reader.shard_count(), 0);
        let mut ev = RawEvent::new();
        assert!(reader.next_into(&mut ev).unwrap());
        assert_eq!(reader.shard_count(), 4);
    }

    #[test]
    fn new_names_from_different_shards_merge_consistently() {
        // The same late name in two different shards must resolve to one
        // merged symbol even though the shard-local indices differ.
        let mut doc = String::from("<r>");
        doc.push_str(&"<common>x</common>".repeat(50));
        doc.push_str("<zeta/>");
        doc.push_str(&"<common>x</common>".repeat(50));
        doc.push_str("<zeta/>");
        doc.push_str("</r>");
        let mut config = ShardConfig::new(3);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
        let mut ev = RawEvent::new();
        let mut zeta_syms = Vec::new();
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement && reader.symbols().name(ev.name()) == "zeta"
            {
                zeta_syms.push(ev.name());
            }
        }
        assert_eq!(zeta_syms.len(), 2);
        assert_eq!(zeta_syms[0], zeta_syms[1], "one merged symbol per name");
    }

    #[test]
    fn seeded_symbols_are_preserved() {
        let mut seed = SymbolTable::new();
        let book = seed.intern("book");
        let doc = "<book/>";
        let mut reader =
            ShardedReader::with_symbols(doc.as_bytes().to_vec(), ShardConfig::new(2), seed);
        let mut ev = RawEvent::new();
        let mut seen = None;
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement {
                seen = Some(ev.name());
            }
        }
        assert_eq!(seen, Some(book));
    }

    #[test]
    fn errors_match_sequential_verdicts() {
        let bad_docs = [
            "<a><b></a></b>",    // mismatched
            "<a><b></b>",        // unclosed root
            "<a/><b/>",          // multiple roots
            "hello<a/>",         // text before root
            "<a/>hello",         // text after root
            "",                  // empty
            "&#32;<a/>",         // charref whitespace before root
            "<a/>&#x20;",        // charref whitespace after root
            "<![CDATA[ ]]><a/>", // CDATA whitespace before root
            "<a/><![CDATA[]]>",  // CDATA after root
        ];
        for doc in bad_docs {
            assert!(parse_to_events(doc).is_err(), "sequential accepts {doc:?}");
            for shards in [1, 2, 3] {
                for mode in [ReplayMode::Pipelined, ReplayMode::Joined] {
                    assert!(
                        sharded_events_mode(doc, shards, mode).is_err(),
                        "sharded ({shards}, {mode:?}) accepts {doc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn error_is_terminal_then_eof() {
        let mut config = ShardConfig::new(2);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(b"<a></b>".to_vec(), config);
        let mut ev = RawEvent::new();
        let mut saw_error = false;
        loop {
            match reader.next_into(&mut ev) {
                Ok(true) => {}
                Ok(false) => break,
                Err(_) => saw_error = true,
            }
        }
        assert!(saw_error);
        assert!(!reader.next_into(&mut ev).unwrap());
    }

    /// Asserts that the sharded partial event stream and terminal error
    /// (message *and* position) are byte-exact the sequential reader's,
    /// at several shard counts in both modes.
    fn assert_prefix_and_error_match(doc: &str) {
        let (seq_events, seq_err) = {
            let mut reader = flux_xml::XmlReader::new(doc.as_bytes());
            let mut ev = RawEvent::new();
            let mut events = Vec::new();
            let err = loop {
                match reader.next_into(&mut ev) {
                    Ok(true) => events.push(ev.to_xml_event(reader.symbols())),
                    Ok(false) => panic!("sequential must reject"),
                    Err(e) => break e,
                }
            };
            (events, err)
        };

        for shards in [1, 2, 3, 8] {
            for mode in [ReplayMode::Pipelined, ReplayMode::Joined] {
                let mut config = ShardConfig::new(shards);
                config.min_shard_bytes = 1;
                config.mode = mode;
                let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
                let mut ev = RawEvent::new();
                let mut events = Vec::new();
                let err = loop {
                    match reader.next_into(&mut ev) {
                        Ok(true) => events.push(ev.to_xml_event(reader.symbols())),
                        Ok(false) => panic!("sharded must reject"),
                        Err(e) => break e,
                    }
                };
                assert_eq!(
                    events, seq_events,
                    "partial stream diverged ({shards} shards, {mode:?})"
                );
                assert_eq!(
                    err.to_string(),
                    seq_err.to_string(),
                    "error (incl. position) diverged ({shards} shards, {mode:?})"
                );
            }
        }
    }

    /// The valid prefix is streamed before the error — the sequential
    /// delivery order — and the error position (offset, line, column) is
    /// exactly the sequential reader's.
    #[test]
    fn error_position_and_prefix_match_sequential() {
        // A mismatch deep in the document, behind a newline so line/column
        // composition is exercised.
        let mut doc = String::from("<r>\n");
        for i in 0..40 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>\n"));
        }
        doc.push_str("<y></z></r>");
        assert_prefix_and_error_match(&doc);
    }

    /// Input truncated in the middle of a text run: the sequential reader
    /// raises the unclosed-elements error *without* delivering the run,
    /// and the sharded replay must do the same (the fragment worker
    /// delivers it, because more input could have followed — the merger
    /// suppresses it at real end-of-input).
    #[test]
    fn truncated_inside_text_matches_sequential_prefix() {
        let mut doc = String::from("<r>");
        for i in 0..30 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
        }
        doc.push_str("<open>trailing text with no close");
        assert_prefix_and_error_match(&doc);
        // Whitespace-only trailing run, same rule.
        let mut doc = String::from("<r>");
        for i in 0..30 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
        }
        doc.push_str("<open>   ");
        assert_prefix_and_error_match(&doc);
    }

    /// A text run terminated by a *suppressed* construct (comment, PI)
    /// before end-of-input is a complete run the sequential reader
    /// delivers — the EOF suppression must not swallow it even though it
    /// is the last event on the final shard's tape.
    #[test]
    fn trailing_text_before_suppressed_markup_is_delivered() {
        for tail in ["<!-- a comment -->", "<?pi data?>"] {
            let mut doc = String::from("<r>");
            for i in 0..30 {
                doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
            }
            doc.push_str("<open>trailing text");
            doc.push_str(tail);
            assert_prefix_and_error_match(&doc);
        }
    }
}
