//! Baseline engine errors.

use std::fmt;

#[derive(Debug)]
pub enum BaselineError {
    Xml(flux_xml::XmlError),
    XQuery(flux_xquery::XQueryError),
    /// The run's tracked memory peak exceeded its configured
    /// [`flux_xml::MemoryBudget`] (checked post-run).
    /// Boxed: the per-pool breakdown would otherwise dominate the size of
    /// every `Result` on the hot path.
    Budget(Box<flux_xml::BudgetExceeded>),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Xml(e) => write!(f, "{e}"),
            BaselineError::XQuery(e) => write!(f, "{e}"),
            BaselineError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Xml(e) => Some(e),
            BaselineError::XQuery(e) => Some(e),
            BaselineError::Budget(e) => Some(e.as_ref()),
        }
    }
}

impl From<flux_xml::XmlError> for BaselineError {
    fn from(e: flux_xml::XmlError) -> Self {
        BaselineError::Xml(e)
    }
}

impl From<flux_xquery::XQueryError> for BaselineError {
    fn from(e: flux_xquery::XQueryError) -> Self {
        BaselineError::XQuery(e)
    }
}

impl From<flux_xml::BudgetExceeded> for BaselineError {
    fn from(e: flux_xml::BudgetExceeded) -> Self {
        BaselineError::Budget(Box::new(e))
    }
}

pub type Result<T> = std::result::Result<T, BaselineError>;
