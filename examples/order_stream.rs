//! The paper's motivating scenario (Sec. 1): XQuery over XML data streams
//! "in e-commerce settings". A long stream of purchase orders is
//! transformed on the fly — flagged big-ticket orders, reformatted
//! line items — while memory stays constant no matter how long the stream
//! runs.
//!
//! Run with: `cargo run --release --example order_stream`

use fluxquery::{FluxEngine, Options};
use std::io::Write;

const ORDERS_DTD: &str = "<!ELEMENT orders (order)*>\n\
     <!ELEMENT order (customer, item+, total)>\n\
     <!ATTLIST order id CDATA #REQUIRED>\n\
     <!ELEMENT customer (#PCDATA)>\n\
     <!ELEMENT item (sku, qty)>\n\
     <!ELEMENT sku (#PCDATA)>\n\
     <!ELEMENT qty (#PCDATA)>\n\
     <!ELEMENT total (#PCDATA)>";

/// Flag big orders, keeping customer and total. The DTD's order constraint
/// (customer before items before total) lets everything stream except the
/// total-test, which needs the `total` element that arrives last —
/// FluXQuery buffers exactly the projected customer text per order.
const QUERY: &str = r#"<alerts>{
    for $o in $ROOT/orders/order
    where $o/total > 900
    return <alert id="{$o/@id}">{$o/customer}{$o/total}</alert>
}</alerts>"#;

/// Generates a pseudo-random order stream without materialising it.
fn write_orders(sink: &mut impl Write, n: usize) -> std::io::Result<u64> {
    let mut bytes: u64 = 0;
    let mut out = |s: &str, sink: &mut dyn Write| -> std::io::Result<()> {
        bytes += s.len() as u64;
        sink.write_all(s.as_bytes())
    };
    out("<orders>", sink)?;
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..n {
        let items = 1 + (next() % 4) as usize;
        let total = 50 + (next() % 1500);
        out(
            &format!(
                "<order id=\"o{i}\"><customer>Customer {}</customer>",
                next() % 500
            ),
            sink,
        )?;
        for _ in 0..items {
            out(
                &format!(
                    "<item><sku>SKU-{:05}</sku><qty>{}</qty></item>",
                    next() % 10_000,
                    1 + next() % 9
                ),
                sink,
            )?;
        }
        out(&format!("<total>{total}</total></order>"), sink)?;
    }
    out("</orders>", sink)?;
    Ok(bytes)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = FluxEngine::compile(QUERY, ORDERS_DTD, &Options::default())?;
    println!("{}", engine.explain());

    for &orders in &[1_000usize, 10_000, 100_000] {
        let mut stream = Vec::new();
        let input_bytes = write_orders(&mut stream, orders)?;
        let mut out = Vec::new();
        let stats = engine.run_input(fluxquery::Input::from_bytes(stream), &mut out)?;
        let alerts = String::from_utf8(out)?.matches("<alert ").count();
        println!(
            "{orders:>7} orders  {input_bytes:>10} bytes in  {alerts:>6} alerts  \
             peak buffer {:>5} bytes  {:>10.1?}",
            stats.peak_buffer_bytes, stats.duration
        );
    }
    println!("\npeak buffer is constant: the stream could run forever.");
    Ok(())
}
