//! Runtime errors.

use flux_xquery::XQueryError;
use flux_xsax::XsaxError;
use std::fmt;

#[derive(Debug)]
pub enum RuntimeError {
    /// Input parsing/validation failure.
    Xsax(XsaxError),
    /// Buffered evaluation failure.
    Eval(XQueryError),
    /// Output serialisation failure.
    Output(flux_xml::XmlError),
    /// Inconsistent plan (compiler bug surfaced as an error).
    Plan { message: String },
    /// The run's tracked memory peak exceeded its configured
    /// [`flux_xml::MemoryBudget`] (checked post-run by the engine).
    /// Boxed: the per-pool breakdown would otherwise dominate the size of
    /// every `Result` on the hot path.
    Budget(Box<flux_xml::BudgetExceeded>),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Xsax(e) => write!(f, "{e}"),
            RuntimeError::Eval(e) => write!(f, "{e}"),
            RuntimeError::Output(e) => write!(f, "output error: {e}"),
            RuntimeError::Plan { message } => write!(f, "plan error: {message}"),
            RuntimeError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Xsax(e) => Some(e),
            RuntimeError::Eval(e) => Some(e),
            RuntimeError::Output(e) => Some(e),
            RuntimeError::Plan { .. } => None,
            RuntimeError::Budget(e) => Some(e.as_ref()),
        }
    }
}

impl From<XsaxError> for RuntimeError {
    fn from(e: XsaxError) -> Self {
        RuntimeError::Xsax(e)
    }
}

impl From<XQueryError> for RuntimeError {
    fn from(e: XQueryError) -> Self {
        RuntimeError::Eval(e)
    }
}

impl From<flux_xml::XmlError> for RuntimeError {
    fn from(e: flux_xml::XmlError) -> Self {
        RuntimeError::Output(e)
    }
}

impl From<flux_xml::BudgetExceeded> for RuntimeError {
    fn from(e: flux_xml::BudgetExceeded) -> Self {
        RuntimeError::Budget(Box::new(e))
    }
}

pub type Result<T> = std::result::Result<T, RuntimeError>;
