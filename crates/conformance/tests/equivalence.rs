//! Cursor-evaluator equivalence suite: the compiled streaming evaluator
//! (symbol-annotated plans + lazy sequence cursors) pinned against the
//! retained materialising evaluator (`flux_xquery::reference`) — same
//! output bytes across all three engine architectures, shard counts
//! {1, 2} and bounded/unbounded interners, invariant run statistics, and
//! identical evaluation-error messages.
//!
//! Part of the release-mode `conformance` CI job.

use flux_bench::Domain;
use flux_conformance::assert_cursor_matches_reference;
use flux_xml::tree::TreeBuilder;
use flux_xml::{RawEvent, ReaderConfig, SymbolTable, XmlReader};
use flux_xquery::{
    eval_to_string, normalize, parse_query, pretty, reference_eval_to_string, AttrConstructor,
    AttrPart, CmpOp, Cond, Expr, Operand, Path,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Labels of the bibliography schemas (plus a bogus one the cursor's
/// literal-spelling fallback has to handle: no DTD declares it).
const LABELS: &[&str] = &["book", "title", "author", "editor", "publisher", "bogus"];
const OUTPUT_NAMES: &[&str] = &["r", "item", "entry"];
const STRINGS: &[&str] = &["alpha", "", "x<y&z"];

struct QueryGen {
    rng: SmallRng,
    vars: Vec<String>,
    next_var: u32,
    budget: i32,
}

impl QueryGen {
    fn new(seed: u64) -> Self {
        QueryGen {
            rng: SmallRng::seed_from_u64(seed),
            vars: vec!["ROOT".to_string()],
            next_var: 0,
            budget: 30,
        }
    }

    fn pick<'a>(&mut self, options: &'a [&'a str]) -> &'a str {
        options[self.rng.gen_range(0..options.len())]
    }

    fn random_path(&mut self, max_steps: usize) -> Path {
        let start = self.vars[self.rng.gen_range(0..self.vars.len())].clone();
        let mut path = Path::var(start);
        for _ in 0..self.rng.gen_range(0..=max_steps) {
            path = path.child(self.pick(LABELS).to_string());
        }
        if path.start == "ROOT" && path.steps.is_empty() {
            path = path.child("bib");
        }
        path
    }

    fn random_cond(&mut self, depth: usize) -> Cond {
        self.budget -= 1;
        if depth == 0 || self.budget <= 0 {
            return Cond::Exists(self.random_path(2));
        }
        match self.rng.gen_range(0..5) {
            0 => Cond::Cmp {
                lhs: Operand::Path(self.random_path(2)),
                op: if self.rng.gen_bool(0.5) {
                    CmpOp::Eq
                } else {
                    CmpOp::Lt
                },
                rhs: Operand::StringLit(self.pick(STRINGS).to_string()),
            },
            1 => Cond::And(
                Box::new(self.random_cond(depth - 1)),
                Box::new(self.random_cond(depth - 1)),
            ),
            2 => Cond::Not(Box::new(self.random_cond(depth - 1))),
            3 => Cond::Empty(self.random_path(2)),
            _ => Cond::Exists(self.random_path(2)),
        }
    }

    fn random_expr(&mut self, depth: usize) -> Expr {
        self.budget -= 1;
        if depth == 0 || self.budget <= 0 {
            return match self.rng.gen_range(0..3) {
                0 => Expr::StringLit(self.pick(STRINGS).to_string()),
                1 => {
                    let v = self.vars[self.rng.gen_range(0..self.vars.len())].clone();
                    if v == "ROOT" {
                        Expr::StringLit("doc".to_string())
                    } else {
                        Expr::Var(v)
                    }
                }
                _ => Expr::Path(self.random_path(2)),
            };
        }
        match self.rng.gen_range(0..8) {
            0..=2 => {
                self.next_var += 1;
                let var = format!("v{}", self.next_var);
                let source = {
                    let mut p = self.random_path(1);
                    if p.steps.is_empty() {
                        p = p.child(self.pick(LABELS).to_string());
                    }
                    p
                };
                let where_clause = if self.rng.gen_bool(0.4) {
                    Some(Box::new(self.random_cond(1)))
                } else {
                    None
                };
                self.vars.push(var.clone());
                let body = self.random_expr(depth - 1);
                self.vars.pop();
                Expr::For {
                    var,
                    source,
                    where_clause,
                    body: Box::new(body),
                }
            }
            3..=4 => {
                let attributes = if self.rng.gen_bool(0.3) {
                    vec![AttrConstructor {
                        name: "k".to_string(),
                        value: vec![
                            AttrPart::Literal("v-".to_string()),
                            AttrPart::Expr(Expr::Path(self.random_path(1))),
                        ],
                    }]
                } else {
                    vec![]
                };
                let n = self.rng.gen_range(1..=2);
                let content = Expr::seq((0..n).map(|_| self.random_expr(depth - 1)).collect());
                Expr::Element {
                    name: self.pick(OUTPUT_NAMES).to_string(),
                    attributes,
                    content: Box::new(content),
                }
            }
            5 => Expr::If {
                cond: Box::new(self.random_cond(1)),
                then_branch: Box::new(self.random_expr(depth - 1)),
                else_branch: Box::new(self.random_expr(depth - 1)),
            },
            6 => Expr::Path(self.random_path(2)),
            _ => Expr::StringLit(self.pick(STRINGS).to_string()),
        }
    }
}

fn random_query(seed: u64) -> String {
    let mut g = QueryGen::new(seed);
    g.next_var += 1;
    let var = format!("v{}", g.next_var);
    g.vars.push(var.clone());
    let body = g.random_expr(3);
    g.vars.pop();
    pretty(&Expr::Element {
        name: "out".to_string(),
        attributes: vec![],
        content: Box::new(Expr::For {
            var,
            source: Path::var("ROOT").child("bib").child("book"),
            where_clause: None,
            body: Box::new(body),
        }),
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The full grid: every sampled query, on both bibliography domains,
    /// must reproduce the materialising reference evaluator's output
    /// byte-for-byte through every engine × shards × interner-cap cell.
    #[test]
    fn cursor_evaluator_matches_reference(
        query_seed in 0u64..100_000,
        doc_seed in 0u64..1_000,
        weak in any::<bool>(),
    ) {
        let query = random_query(query_seed);
        let domain = if weak { Domain::BibWeak } else { Domain::BibFig1 };
        let doc = domain.document(0.12, doc_seed);
        assert_cursor_matches_reference(
            &format!("seed {query_seed}/{doc_seed}"),
            &query,
            domain.dtd(),
            doc.as_bytes(),
        );
    }
}

/// Evaluation errors must render identically from the cursor evaluator and
/// the reference evaluator — message for message, including the spelled
/// variable name.
#[test]
fn cursor_and_reference_agree_on_errors() {
    let doc_bytes = b"<bib><book><title>T</title><price>12</price></book></bib>";
    let mut reader =
        XmlReader::with_symbols(&doc_bytes[..], ReaderConfig::default(), SymbolTable::new());
    let mut builder = TreeBuilder::new();
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).unwrap() {
        builder.raw_event(reader.symbols(), &ev).unwrap();
    }
    let doc = builder.finish().unwrap();

    // Unbound variable, and a `for` over a path that selects no element
    // nodes (text tail where elements are required).
    for query in [
        "<r>{$nowhere}</r>",
        r#"<r>{ for $b in $ROOT/bib/book return <x a="{$oops}"/> }</r>"#,
    ] {
        let parsed = parse_query(query).unwrap();
        let normalized = normalize(&parsed).unwrap();
        let cursor = eval_to_string(&doc, &normalized).expect_err("query must fail");
        let reference = reference_eval_to_string(&doc, &normalized).expect_err("query must fail");
        assert_eq!(
            cursor.to_string(),
            reference.to_string(),
            "error rendering diverged on {query}"
        );
    }
}

/// Both evaluators agree on well-formed deterministic shapes that exercise
/// every tail kind: attribute selection, `text()`, and nested predicates.
#[test]
fn tails_and_predicates_agree() {
    let doc = "<bib>\
        <book year=\"1994\"><title>TCP/IP Illustrated</title>\
        <author>Stevens</author><publisher>AW</publisher><price>65.95</price></book>\
        <book year=\"2000\"><title>Data on the Web</title>\
        <author>Abiteboul</author><author>Buneman</author>\
        <publisher>MK</publisher><price>39.95</price></book>\
        </bib>";
    for query in [
        r#"<out>{ for $b in $ROOT/bib/book return <r y="{$b/@year}">{$b/title/text()}</r> }</out>"#,
        r#"<out>{ for $b in $ROOT/bib/book where $b/price < "50" return $b/author }</out>"#,
        r#"<out>{ for $b in $ROOT/bib/book where $b/author = "Stevens" return $b/title }</out>"#,
    ] {
        assert_cursor_matches_reference(
            "deterministic",
            query,
            fluxquery_core::PAPER_FIG1_DTD,
            doc.as_bytes(),
        );
    }
}
