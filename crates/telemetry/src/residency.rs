//! The buffer-residency high-water sampler.
//!
//! [`Residency`] turns the memory tracker's per-operation `current_bytes`
//! updates into a bounded trace of how buffered memory evolved over the
//! run — the curve the paper's buffer-minimization claim is about. Every
//! tracker mutation calls [`Residency::tick`]; the sampler keeps the
//! high-water mark of each sampling window and emits one `(tick,
//! high_water)` point per window into a **fixed inline array**: no heap
//! allocation ever, so the allocation-free buffer-and-free loop stays
//! allocation-free with telemetry on.
//!
//! The trace is kept bounded by *decimation*: when the array fills, its
//! points are folded pairwise (keeping each pair's high-water maximum)
//! and the sampling stride doubles. A run of any length therefore yields
//! between 32 and 64 points whose maxima are exact — the global peak is
//! never lost, only time resolution.

/// Sample slots held inline (the trace never exceeds this many points).
pub const RESIDENCY_SLOTS: usize = 64;

/// A decimating high-water sampler over tracker ticks (zero-sized no-op
/// when telemetry is off).
#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
pub struct Residency {
    /// `(tick, high_water_bytes)` points, oldest first.
    samples: [(u64, u64); RESIDENCY_SLOTS],
    len: usize,
    /// Ticks per sample window minus one (the stride is always a power of
    /// two, so the boundary test is a mask, not a division — `tick` sits
    /// on the buffer store's per-operation path).
    stride_mask: u64,
    ticks: u64,
    /// High-water mark inside the current (unfinished) window.
    window_high: u64,
}

#[cfg(feature = "enabled")]
impl Default for Residency {
    fn default() -> Self {
        Residency {
            samples: [(0, 0); RESIDENCY_SLOTS],
            len: 0,
            stride_mask: 0,
            ticks: 0,
            window_high: 0,
        }
    }
}

#[cfg(feature = "enabled")]
impl Residency {
    /// Feeds one tracker mutation with the post-mutation live byte count.
    #[inline]
    pub fn tick(&mut self, current_bytes: u64) {
        self.ticks += 1;
        if current_bytes > self.window_high {
            self.window_high = current_bytes;
        }
        if self.ticks & self.stride_mask == 0 {
            self.push_sample(current_bytes);
        }
    }

    fn push_sample(&mut self, current_bytes: u64) {
        if self.len == RESIDENCY_SLOTS {
            // Decimate in place: fold pairs, keep each pair's maximum and
            // the later tick, double the stride.
            for i in 0..RESIDENCY_SLOTS / 2 {
                let (_, high_a) = self.samples[2 * i];
                let (tick_b, high_b) = self.samples[2 * i + 1];
                self.samples[i] = (tick_b, high_a.max(high_b));
            }
            self.len = RESIDENCY_SLOTS / 2;
            self.stride_mask = self.stride_mask * 2 + 1;
            if self.ticks & self.stride_mask != 0 {
                // This window is now only half done under the new stride;
                // keep accumulating instead of emitting a short sample.
                return;
            }
        }
        self.samples[self.len] = (self.ticks, self.window_high);
        self.len += 1;
        self.window_high = current_bytes;
    }

    /// The trace so far: `(tick, high_water_bytes)` points, oldest first
    /// (empty when telemetry is off).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.samples[..self.len].to_vec()
    }

    /// The maximum high-water mark across all windows, including the
    /// current unfinished one — must equal the tracker's own peak.
    pub fn max_high_water(&self) -> u64 {
        self.samples[..self.len]
            .iter()
            .map(|&(_, h)| h)
            .max()
            .unwrap_or(0)
            .max(self.window_high)
    }
}

/// A decimating high-water sampler over tracker ticks (zero-sized no-op
/// when telemetry is off).
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Clone, Default)]
pub struct Residency {}

#[cfg(not(feature = "enabled"))]
impl Residency {
    /// No-op tick.
    #[inline(always)]
    pub fn tick(&mut self, current_bytes: u64) {
        let _ = current_bytes;
    }

    /// Always empty when telemetry is off.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Always 0 when telemetry is off.
    pub fn max_high_water(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_trace_preserves_peak() {
        let mut r = Residency::default();
        // A sawtooth with one spike: grow to i, drop to 0; spike to 9999
        // mid-run.
        for i in 0..10_000u64 {
            r.tick(i % 97);
            if i == 5_000 {
                r.tick(9_999);
            }
        }
        let trace = r.snapshot();
        if crate::enabled() {
            assert!(trace.len() <= RESIDENCY_SLOTS, "trace stays bounded");
            assert!(trace.len() >= RESIDENCY_SLOTS / 2, "decimation keeps half");
            assert_eq!(r.max_high_water(), 9_999, "spike survives decimation");
            let ticks: Vec<u64> = trace.iter().map(|&(t, _)| t).collect();
            let mut sorted = ticks.clone();
            sorted.sort_unstable();
            assert_eq!(ticks, sorted, "samples stay in tick order");
        } else {
            assert!(trace.is_empty());
            assert_eq!(std::mem::size_of::<Residency>(), 0);
        }
    }

    #[test]
    fn short_runs_sample_every_tick() {
        let mut r = Residency::default();
        for i in [5u64, 3, 8, 2] {
            r.tick(i);
        }
        if crate::enabled() {
            assert_eq!(r.snapshot().len(), 4, "stride 1 until the array fills");
            assert_eq!(r.max_high_water(), 8);
        }
    }
}
