//! The memory-accounted buffer store.
//!
//! One arena [`Document`] holds every buffered node: scope shells (one per
//! active `on` handler binding), projected subtree copies, and text. Scope
//! subtrees are freed when their scope closes; freed slots are recycled, so
//! physical memory is bounded by *peak live buffered data* — the quantity
//! the paper's evaluation measures — and never by document size.
//!
//! The store is **symbol-keyed**: the arena document's name table is
//! seeded with the stream's table, so buffering an element copies its
//! name as a plain integer ([`Document::import_name`]) — no name string is
//! ever materialised, and the accounted bytes per node are content bytes
//! only. Names the seed does *not* cover (undeclared attributes, bounded-
//! interner overflow) intern into the arena document's own table once per
//! distinct spelling; those dictionary bytes live for the whole run (a
//! scope free cannot return them), so they are charged to the tracker as
//! un-releasable growth the moment they are first seen — an adversarial
//! stream minting unbounded distinct names shows up in
//! `peak_buffer_bytes` instead of hiding in an unaccounted table. Freed
//! nodes donate their text buffers and attribute vectors back to a spare
//! pool, so the steady-state buffer-and-free loop of a scoped query (one
//! book at a time, in the paper's running example) performs **zero heap
//! allocations**.
//!
//! Short text payloads the stream repeats (author names, recurring labels)
//! go through a frequency gate ([`TextGate`]): once a payload has been
//! seen often enough *within one scope generation* it interns into the
//! arena document's shared-text dictionary and subsequent sightings buffer
//! as an index instead of a copy. [`BufferArena::free_scope`] bumps the
//! gate's generation, so only payloads whose copies are simultaneously
//! live can cross — the one case where sharing lowers the live-byte peak.
//! A payload that recurs once per freed scope never interns: it would
//! grow the resident dictionary without ever saving a live byte.
//! Dictionary bytes are charged to the tracker exactly like interned
//! names — un-releasable, once per distinct payload — so the saving shows
//! up honestly in `peak_buffer_bytes` rather than hiding in an unaccounted
//! side table.

use crate::stats::MemoryTracker;
use flux_xml::tree::{Document, NodeAttr, NodeId, NodeKind};
use flux_xml::{Attribute, RawEvent, RawEventRef, SymbolTable, TextGate};
use flux_xquery::{CompiledPath, CursorPool, ItemCursor, PathCursor};

/// Arena of buffered nodes with recycling and byte accounting.
pub struct BufferArena {
    doc: Document,
    free_slots: Vec<NodeId>,
    /// Cleared `String`s harvested from freed text nodes and attribute
    /// values, reused (capacity and all) by the next buffered payload.
    spare_strings: Vec<String>,
    /// Emptied attribute vectors harvested from freed element nodes.
    spare_attr_vecs: Vec<Vec<NodeAttr>>,
    /// Reusable traversal stack for [`BufferArena::free_scope`].
    free_stack: Vec<NodeId>,
    /// Frequency gate deciding which short text payloads join the shared
    /// dictionary. Fixed-size machine state, like the spare pools — not
    /// buffered data, so not charged to the tracker.
    gate: TextGate,
    tracker: MemoryTracker,
}

impl Default for BufferArena {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferArena {
    /// An arena with a fresh name table.
    pub fn new() -> Self {
        Self::with_symbols(SymbolTable::new())
    }

    /// An arena whose document is seeded with the stream's symbol table
    /// (cloned), so buffering stream events copies names as integers.
    pub fn with_symbols(symbols: SymbolTable) -> Self {
        BufferArena {
            doc: Document::with_symbols(symbols),
            free_slots: Vec::new(),
            spare_strings: Vec::new(),
            spare_attr_vecs: Vec::new(),
            free_stack: Vec::new(),
            gate: TextGate::new(),
            tracker: MemoryTracker::new(),
        }
    }

    /// Read access for the interpreter.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    pub fn tracker(&self) -> &MemoryTracker {
        &self.tracker
    }

    /// A cleared string from the spare pool (or a fresh one), filled with
    /// `content`. Allocation-free once the pool's buffers have grown to
    /// the workload's largest payload.
    fn pooled_string(&mut self, content: &str) -> String {
        let mut s = self.spare_strings.pop().unwrap_or_default();
        s.push_str(content);
        s
    }

    /// An emptied attribute vector from the spare pool (or a fresh one).
    fn pooled_attrs(&mut self) -> Vec<NodeAttr> {
        self.spare_attr_vecs.pop().unwrap_or_default()
    }

    /// Charges any dictionary growth since `before` to the tracker as
    /// un-releasable bytes: a name interned past the seed lives for the
    /// whole run, so it must be visible in the peak, once per distinct
    /// spelling.
    fn charge_dictionary(&mut self, before: usize) {
        let delta = self.doc.interned_name_bytes() - before;
        if delta > 0 {
            self.tracker.grow(delta);
        }
    }

    /// Installs `kind` in a recycled slot or a fresh node, and accounts it.
    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.doc.reset_node(slot, kind);
                slot
            }
            None => match kind {
                NodeKind::Element { name, attributes } => {
                    self.doc.create_element_sym(name, attributes)
                }
                NodeKind::Text(t) => self.doc.create_text(t),
                NodeKind::SharedText(idx) => self.doc.create_shared_text(idx),
                NodeKind::Document => unreachable!("arena never allocates document nodes"),
            },
        };
        self.tracker.allocate(self.doc.node_heap_bytes(id));
        id
    }

    /// Creates a detached element node from string-named parts (tests and
    /// plan-side constructors; the streaming path uses the view variants).
    pub fn create_element(&mut self, name: &str, attributes: &[Attribute]) -> NodeId {
        let dict_before = self.doc.interned_name_bytes();
        let name = self.doc.intern(name);
        let mut attrs = self.pooled_attrs();
        for a in attributes {
            let name = self.doc.intern(&a.name);
            let value = self.pooled_string(&a.value);
            attrs.push(NodeAttr { name, value });
        }
        self.charge_dictionary(dict_before);
        self.alloc(NodeKind::Element {
            name,
            attributes: attrs,
        })
    }

    /// Appends a new element under `parent`.
    pub fn append_element(
        &mut self,
        parent: NodeId,
        name: &str,
        attributes: &[Attribute],
    ) -> NodeId {
        let id = self.create_element(name, attributes);
        self.doc.append_child(parent, id);
        id
    }

    /// Creates a detached element from a recycled raw event, importing
    /// names through the arena document's table. Overflow-aware: a
    /// [`SymbolTable::OVERFLOW`] name (bounded-interner streams) resolves
    /// through the event's literal-name side channel — never a panic,
    /// never a misnamed node.
    pub fn create_element_raw(&mut self, symbols: &SymbolTable, ev: &RawEvent) -> NodeId {
        let dict_before = self.doc.interned_name_bytes();
        let name = self.doc.import_name(symbols, ev.name(), ev.target());
        let mut attrs = self.pooled_attrs();
        for a in ev.attributes() {
            let name = self.doc.import_name(symbols, a.name, &a.overflow_name);
            let value = self.pooled_string(&a.value);
            attrs.push(NodeAttr { name, value });
        }
        self.charge_dictionary(dict_before);
        self.alloc(NodeKind::Element {
            name,
            attributes: attrs,
        })
    }

    /// Appends a new element from a recycled raw event under `parent`.
    pub fn append_element_raw(
        &mut self,
        parent: NodeId,
        symbols: &SymbolTable,
        ev: &RawEvent,
    ) -> NodeId {
        let id = self.create_element_raw(symbols, ev);
        self.doc.append_child(parent, id);
        id
    }

    /// Creates a detached element from a borrowed event view. Buffering
    /// inherently copies the *content* — attribute values and (later)
    /// text — but names import as integers: zero name strings allocate,
    /// and with warmed spare pools the whole call allocates nothing.
    pub fn create_element_view(&mut self, symbols: &SymbolTable, ev: &RawEventRef<'_>) -> NodeId {
        let dict_before = self.doc.interned_name_bytes();
        let name = self.doc.import_name(symbols, ev.name(), ev.target());
        let mut attrs = self.pooled_attrs();
        for a in ev.attrs() {
            let name = self.doc.import_name(symbols, a.name, a.overflow_name);
            let value = self.pooled_string(a.value);
            attrs.push(NodeAttr { name, value });
        }
        self.charge_dictionary(dict_before);
        self.alloc(NodeKind::Element {
            name,
            attributes: attrs,
        })
    }

    /// Creates a detached scope shell from a borrowed event view, keeping
    /// only the attributes named in `keep` (the names the plan actually
    /// reads — [`crate::bdf::SpecNode::attrs`]). Dropping unread attribute
    /// names here is what keeps the run-long name dictionary off
    /// adversarial streams: a minted name no expression reads never
    /// reaches the arena's table, so `peak_buffer_bytes` stays flat
    /// however many distinct names the input mints.
    pub fn create_element_view_projected(
        &mut self,
        symbols: &SymbolTable,
        ev: &RawEventRef<'_>,
        keep: &[String],
    ) -> NodeId {
        let dict_before = self.doc.interned_name_bytes();
        let name = self.doc.import_name(symbols, ev.name(), ev.target());
        let mut attrs = self.pooled_attrs();
        if !keep.is_empty() {
            for a in ev.attrs() {
                let spelled = symbols.try_name(a.name).unwrap_or(a.overflow_name);
                if !keep.iter().any(|k| k == spelled) {
                    continue;
                }
                let name = self.doc.import_name(symbols, a.name, a.overflow_name);
                let value = self.pooled_string(a.value);
                attrs.push(NodeAttr { name, value });
            }
        }
        self.charge_dictionary(dict_before);
        self.alloc(NodeKind::Element {
            name,
            attributes: attrs,
        })
    }

    /// Appends a new element from a borrowed event view under `parent`.
    pub fn append_element_view(
        &mut self,
        parent: NodeId,
        symbols: &SymbolTable,
        ev: &RawEventRef<'_>,
    ) -> NodeId {
        let id = self.create_element_view(symbols, ev);
        self.doc.append_child(parent, id);
        id
    }

    /// Appends text under `parent`, merging with a trailing text sibling
    /// (a shared trailing sibling demotes to an owned copy — the merged
    /// payload is a new spelling). New nodes route through the frequency
    /// gate: payloads the stream repeats intern into the shared dictionary
    /// and buffer as an index.
    pub fn append_text(&mut self, parent: NodeId, text: &str) {
        if let Some(&last) = self.doc.children(parent).last() {
            let before = self.doc.node_heap_bytes(last);
            let mut scratch = self.spare_strings.pop().unwrap_or_default();
            let merged = self.doc.merge_text(last, text, &mut scratch);
            self.spare_strings.push(scratch);
            if merged {
                self.tracker.grow(self.doc.node_heap_bytes(last) - before);
                return;
            }
        }
        let kind = match self.shared_index(text) {
            Some(idx) => NodeKind::SharedText(idx),
            None => NodeKind::Text(self.pooled_string(text)),
        };
        let id = self.alloc(kind);
        self.doc.append_child(parent, id);
    }

    /// Dictionary index for `text` if it is (or just became) shared:
    /// recurring short payloads pass the gate and intern once, with the
    /// dictionary bytes charged to the tracker as un-releasable growth.
    fn shared_index(&mut self, text: &str) -> Option<u32> {
        if !TextGate::eligible(text) {
            return None;
        }
        if let Some(idx) = self.doc.shared_text_lookup(text) {
            return Some(idx);
        }
        if !self.gate.admit(text) {
            return None;
        }
        let before = self.doc.shared_text_bytes();
        let idx = self.doc.intern_shared_text(text);
        self.tracker.grow(self.doc.shared_text_bytes() - before);
        Some(idx)
    }

    /// Frees a detached scope subtree, recycling every node — and every
    /// node's heap buffers, which go back to the spare pools instead of
    /// the allocator.
    pub fn free_scope(&mut self, root: NodeId) {
        debug_assert!(self.doc.parent(root).is_none(), "scope roots are detached");
        // Freed copies can no longer benefit from sharing: start a new
        // sighting generation so only intra-scope repetition (live
        // duplicates) counts toward the dictionary gate.
        self.gate.bump_generation();
        let mut stack = std::mem::take(&mut self.free_stack);
        stack.clear();
        stack.push(root);
        while let Some(id) = stack.pop() {
            stack.extend(self.doc.children(id).iter().copied());
            self.tracker.release(self.doc.node_heap_bytes(id));
            // Swap in an empty payload (so the accounted release is real)
            // and harvest the old payload's buffers for reuse.
            match self.doc.reset_node(id, NodeKind::Text(String::new())) {
                NodeKind::Element { mut attributes, .. } => {
                    for mut attr in attributes.drain(..) {
                        attr.value.clear();
                        self.spare_strings.push(attr.value);
                    }
                    self.spare_attr_vecs.push(attributes);
                }
                NodeKind::Text(mut t) => {
                    t.clear();
                    self.spare_strings.push(t);
                }
                // The payload lives in the run-long dictionary (already
                // charged); the node itself carried no heap to harvest.
                NodeKind::SharedText(_) => {}
                NodeKind::Document => {}
            }
            self.free_slots.push(id);
        }
        self.free_stack = stack;
    }

    /// The child span of a buffered node — the raw slice cursors walk.
    pub fn span(&self, id: NodeId) -> &[NodeId] {
        self.doc.children(id)
    }

    /// A node cursor streaming the element steps of `path` out of the
    /// arena, starting at `start`. Scratch comes from (and returns to)
    /// `pool`, so steady-state construction allocates nothing.
    pub fn node_cursor<'a>(
        &'a self,
        path: &CompiledPath,
        start: NodeId,
        pool: &mut CursorPool,
    ) -> PathCursor<'a> {
        PathCursor::new(&self.doc, path, start, pool)
    }

    /// An item cursor streaming `path` (tail included) out of the arena.
    pub fn item_cursor<'a>(
        &'a self,
        path: &CompiledPath,
        start: NodeId,
        pool: &mut CursorPool,
    ) -> ItemCursor<'a> {
        ItemCursor::new(&self.doc, path, start, pool)
    }

    /// Current live buffered bytes.
    pub fn current_bytes(&self) -> usize {
        self.tracker.current_bytes()
    }

    /// Peak live buffered bytes.
    pub fn peak_bytes(&self) -> usize {
        self.tracker.peak_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_navigate() {
        let mut arena = BufferArena::new();
        let book = arena.create_element("book", &[Attribute::new("year", "1994")]);
        let title = arena.append_element(book, "title", &[]);
        arena.append_text(title, "TCP/IP");
        let author = arena.append_element(book, "author", &[]);
        arena.append_text(author, "Stevens");
        let doc = arena.doc();
        assert_eq!(doc.children(book).len(), 2);
        assert_eq!(doc.string_value(book), "TCP/IPStevens");
        assert_eq!(doc.attribute(book, "year"), Some("1994"));
    }

    #[test]
    fn text_merging_accounts_growth() {
        let mut arena = BufferArena::new();
        let e = arena.create_element("t", &[]);
        arena.append_text(e, "ab");
        let before = arena.current_bytes();
        arena.append_text(e, "cd");
        assert_eq!(
            arena.doc().children(e).len(),
            1,
            "merged into one text node"
        );
        assert_eq!(arena.current_bytes(), before + 2);
        assert_eq!(arena.doc().string_value(e), "abcd");
    }

    #[test]
    fn free_releases_and_recycles() {
        let mut arena = BufferArena::new();
        let scope = arena.create_element("book", &[]);
        let t = arena.append_element(scope, "title", &[]);
        arena.append_text(t, "X");
        let live = arena.current_bytes();
        assert!(live > 0);
        let node_count_before = arena.doc().node_count();
        arena.free_scope(scope);
        // Everything releasable is released; only the run-long name
        // dictionary (interned once, deliberately charged) remains.
        let dictionary = arena.doc().interned_name_bytes();
        assert!(dictionary > 0, "fresh-table arena interned names");
        assert_eq!(arena.current_bytes(), dictionary);
        // New allocations reuse the freed slots: arena does not grow, and
        // re-interning the same names charges nothing new.
        let scope2 = arena.create_element("book", &[]);
        let t2 = arena.append_element(scope2, "title", &[]);
        arena.append_text(t2, "Y");
        assert_eq!(
            arena.doc().node_count(),
            node_count_before,
            "slots recycled"
        );
        assert_eq!(arena.doc().interned_name_bytes(), dictionary);
        assert_eq!(arena.doc().string_value(scope2), "Y");
    }

    #[test]
    fn peak_tracks_maximum_live() {
        let mut arena = BufferArena::new();
        // Simulate: 3 books one at a time, each with one author.
        let mut peak_each = 0;
        for i in 0..3 {
            let scope = arena.create_element("book", &[]);
            let a = arena.append_element(scope, "author", &[]);
            arena.append_text(a, &format!("Author {i}"));
            peak_each = peak_each.max(arena.current_bytes());
            arena.free_scope(scope);
        }
        // Only the two interned names remain live after the last free.
        assert_eq!(arena.current_bytes(), arena.doc().interned_name_bytes());
        assert_eq!(arena.peak_bytes(), peak_each, "peak ≈ one book, not three");
    }

    #[test]
    fn interleaved_scopes_free_correctly() {
        // Outer buffer keeps growing while an inner scope lives and dies —
        // the regression the subtree-walking free exists for.
        let mut arena = BufferArena::new();
        let outer = arena.create_element("outer", &[]);
        arena.append_element(outer, "kept1", &[]);
        let inner = arena.create_element("inner", &[]);
        arena.append_element(inner, "tmp", &[]);
        arena.append_element(outer, "kept2", &[]); // interleaved with inner's life
        arena.free_scope(inner);
        arena.append_element(outer, "kept3", &[]);
        let doc = arena.doc();
        let names: Vec<_> = doc
            .children(outer)
            .iter()
            .map(|&c| doc.name(c).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["kept1", "kept2", "kept3"]);
    }

    #[test]
    fn distinct_name_dictionary_is_accounted() {
        // An adversarial stream minting ever-new names cannot hide in the
        // arena's table: every first-sight name is charged to the tracker
        // as un-releasable bytes, and known names charge nothing.
        let mut arena = BufferArena::new();
        let mut prev = 0;
        for i in 0..50 {
            let scope = arena.create_element(&format!("name{i:04}"), &[]);
            arena.free_scope(scope);
            assert!(
                arena.current_bytes() > prev,
                "distinct name {i} must be visible in live bytes"
            );
            prev = arena.current_bytes();
        }
        let scope = arena.create_element("name0000", &[]);
        arena.free_scope(scope);
        assert_eq!(arena.current_bytes(), prev, "known names charge nothing");
    }

    #[test]
    fn overflow_named_event_buffers_safely() {
        // A bounded-interner stream delivers OVERFLOW + the literal name in
        // the event's side channel: buffering must neither panic nor
        // misname the node, for elements and attributes alike.
        use flux_xml::RawEventKind;
        let symbols = SymbolTable::new();
        let mut arena = BufferArena::with_symbols(symbols.clone());
        let mut ev = RawEvent::new();
        ev.reset(RawEventKind::StartElement);
        ev.set_name(SymbolTable::OVERFLOW);
        ev.target_mut().push_str("mystery");
        ev.push_attr_named("oddattr").push_str("v1");
        let id = arena.create_element_raw(&symbols, &ev);
        assert_eq!(arena.doc().name(id), Some("mystery"));
        assert_eq!(arena.doc().attribute(id, "oddattr"), Some("v1"));
        // Same through the borrowed-view path.
        let view = RawEventRef::from_event(&ev);
        let id2 = arena.create_element_view(&symbols, &view);
        assert_eq!(arena.doc().name(id2), Some("mystery"));
        assert_eq!(arena.doc().attribute(id2, "oddattr"), Some("v1"));
        // And the two spell-alike nodes share one interned name.
        assert_eq!(arena.doc().name_sym(id), arena.doc().name_sym(id2));
    }

    #[test]
    fn steady_state_recycling_reuses_buffers() {
        // After warm-up, buffering the same shape again must not grow the
        // arena (slots, strings and attribute vectors recycle). The
        // payload repeats only *across* freed scopes — never two live
        // copies at once — so it must stay out of the shared dictionary:
        // interning it would grow resident bytes without ever saving a
        // live byte. Accounting therefore closes to zero every round.
        let mut arena = BufferArena::new();
        let payload = "A value that is long enough to matter";
        let mut floor = None;
        for round in 0..10 {
            let scope = arena.create_element("book", &[Attribute::new("year", "1994")]);
            let t = arena.append_element(scope, "title", &[]);
            arena.append_text(t, payload);
            arena.free_scope(scope);
            // The floor is the run-long interned-name charge from round 0
            // ("book"/"year"/"title"); nothing may stack on top of it.
            let names = *floor.get_or_insert(arena.current_bytes());
            assert_eq!(
                arena.current_bytes(),
                names,
                "round {round} leaked accounting"
            );
        }
        assert_eq!(arena.doc().shared_text_bytes(), 0);
        assert!(
            arena.doc().shared_text_lookup(payload).is_none(),
            "cross-scope repetition must not intern (no live duplicates)"
        );
        assert!(
            arena.doc().node_count() <= 4,
            "arena grew past one scope's nodes: {}",
            arena.doc().node_count()
        );
    }

    #[test]
    fn gate_generations_reset_on_free() {
        // Three sightings, free, three more: still owned (each generation
        // starts the tally over). Four sightings inside a single scope
        // cross the gate — that is the profitable case, four live copies
        // sharing one dictionary entry.
        let mut arena = BufferArena::new();
        let payload = "Recurring Author Name";
        for _ in 0..2 {
            let scope = arena.create_element("bib", &[]);
            for _ in 0..3 {
                let e = arena.append_element(scope, "author", &[]);
                arena.append_text(e, payload);
            }
            arena.free_scope(scope);
        }
        assert!(arena.doc().shared_text_lookup(payload).is_none());
        let scope = arena.create_element("bib", &[]);
        for _ in 0..4 {
            let e = arena.append_element(scope, "author", &[]);
            arena.append_text(e, payload);
        }
        assert!(
            arena.doc().shared_text_lookup(payload).is_some(),
            "4 live sightings in one generation must intern"
        );
        // The dictionary entry outlives the scope that earned it: later
        // scopes buffer the payload as an index, charging the node struct
        // but none of the content an owned copy of the same length pays.
        arena.free_scope(scope);
        let scope = arena.create_element("bib", &[]);
        let e1 = arena.append_element(scope, "author", &[]);
        let before = arena.current_bytes();
        arena.append_text(e1, payload);
        let grown_shared = arena.current_bytes() - before;
        let e2 = arena.append_element(scope, "author", &[]);
        let before = arena.current_bytes();
        arena.append_text(e2, "Distinct Author NameX"); // same length, owned
        let grown_owned = arena.current_bytes() - before;
        assert_eq!(grown_owned - grown_shared, payload.len());
        arena.free_scope(scope);
    }

    #[test]
    fn repeated_text_shares_after_gate() {
        // Live buffered payloads: before the gate opens, each sighting of
        // a repeated string costs its full length; after interning, a
        // sighting costs only the node struct — N live copies charge the
        // dictionary once. Distinct long strings never intern.
        let mut arena = BufferArena::new();
        let parent = arena.create_element("bib", &[]);
        let payload = "Recurring Author";
        for _ in 0..4 {
            let e = arena.append_element(parent, "author", &[]);
            arena.append_text(e, payload);
        }
        assert!(
            arena.doc().shared_text_lookup(payload).is_some(),
            "4th sighting interned"
        );
        let shared_floor = arena.doc().shared_text_bytes();
        assert_eq!(shared_floor, 2 * payload.len());
        let before = arena.current_bytes();
        for _ in 0..100 {
            let e = arena.append_element(parent, "author", &[]);
            arena.append_text(e, payload);
        }
        let grown_shared = arena.current_bytes() - before;
        assert_eq!(arena.doc().shared_text_bytes(), shared_floor);
        // Differential: the same shape with distinct same-length payloads
        // (each seen once — they never pass the gate) additionally pays
        // every payload's content bytes.
        let before = arena.current_bytes();
        for i in 0..100 {
            let e = arena.append_element(parent, "author", &[]);
            arena.append_text(e, &format!("Author {i:09}"));
        }
        let grown_owned = arena.current_bytes() - before;
        assert_eq!(
            grown_owned - grown_shared,
            100 * payload.len(),
            "shared sightings must charge node structs only"
        );
        // A long payload is ineligible however often it repeats.
        let long = "L".repeat(100);
        for _ in 0..8 {
            let e = arena.append_element(parent, "author", &[]);
            arena.append_text(e, &long);
        }
        assert!(arena.doc().shared_text_lookup(&long).is_none());
    }

    #[test]
    fn merge_demotes_shared_trailing_text() {
        // Merging new text into a shared trailing sibling demotes it to an
        // owned copy (the merged spelling is new) and accounts the growth.
        let mut arena = BufferArena::new();
        let parent = arena.create_element("bib", &[]);
        for _ in 0..4 {
            let e = arena.append_element(parent, "a", &[]);
            arena.append_text(e, "shared");
        }
        let e = arena.append_element(parent, "a", &[]);
        arena.append_text(e, "shared"); // buffered as a dictionary reference
        let before = arena.current_bytes();
        arena.append_text(e, " plus more");
        assert_eq!(arena.doc().string_value(e), "shared plus more");
        // Growth covers the whole owned payload the demotion materialised.
        assert_eq!(arena.current_bytes() - before, "shared plus more".len());
    }
}
