//! XML Schema frontend (the paper's footnote 1: "the static information
//! required for optimization could just as well be derived from XML
//! Schema").
//!
//! Supports the structural core of XSD sufficient for schema-constraint
//! derivation: global and inline element declarations, `xs:complexType`
//! with `xs:sequence` / `xs:choice` / nested groups, `minOccurs` /
//! `maxOccurs` (including small integer bounds, expanded), `mixed="true"`,
//! `xs:attribute`, and string-typed simple content. The result is the same
//! [`crate::Dtd`] the DTD parser produces, so every automaton and
//! constraint works identically downstream.

use crate::content_model::{AttDef, AttDefault, ContentSpec, Particle};
use crate::dtd::Dtd;
use crate::error::{DtdError, Result};
use flux_xml::tree::{Document, NodeId};

/// Parses an XML Schema document into a [`Dtd`].
pub fn parse_xsd(input: &str) -> Result<Dtd> {
    let doc = Document::parse_str(input)
        .map_err(|e| DtdError::new(format!("XSD is not well-formed XML: {e}")))?;
    let schema = doc
        .root_element()
        .filter(|&r| local_name(doc.name(r).unwrap_or("")) == "schema")
        .ok_or_else(|| DtdError::new("expected an xs:schema root element"))?;

    let mut decls: Vec<(String, ContentSpec, Vec<AttDef>)> = Vec::new();
    let mut globals: Vec<NodeId> = Vec::new();
    for child in doc.children(schema) {
        if element_named(&doc, *child, "element") {
            globals.push(*child);
        }
    }
    if globals.is_empty() {
        return Err(DtdError::new("the schema declares no global elements"));
    }
    for element in &globals {
        collect_element(&doc, *element, &mut decls)?;
    }

    // Render the collected declarations as DTD text and reuse the DTD
    // build pipeline (duplicate detection, automata, root inference).
    let root_name = doc
        .attribute(globals[0], "name")
        .ok_or_else(|| DtdError::new("global xs:element without a name"))?
        .to_string();
    build_dtd(decls, &root_name)
}

fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

fn element_named(doc: &Document, node: NodeId, local: &str) -> bool {
    doc.name(node).map(local_name) == Some(local)
}

/// Recursively collects an element declaration (and any inline local
/// declarations below it).
fn collect_element(
    doc: &Document,
    element: NodeId,
    decls: &mut Vec<(String, ContentSpec, Vec<AttDef>)>,
) -> Result<()> {
    let Some(name) = doc.attribute(element, "name") else {
        // `ref=` carries no declaration of its own.
        return Ok(());
    };
    let name = name.to_string();

    // Simple-typed element (`type="xs:string"` etc.): text content.
    if let Some(ty) = doc.attribute(element, "type") {
        let spec = match local_name(ty) {
            "string" | "anyURI" | "date" | "decimal" | "integer" | "int" | "token" | "NMTOKEN"
            | "ID" | "IDREF" => ContentSpec::Mixed(vec![]),
            other => {
                return Err(DtdError::new(format!(
                    "unsupported element type `{other}` on `{name}`"
                )))
            }
        };
        push_decl(decls, name, spec, Vec::new())?;
        return Ok(());
    }

    // Inline complex type, or nothing (EMPTY).
    let complex = doc
        .children(element)
        .iter()
        .copied()
        .find(|&c| element_named(doc, c, "complexType"));
    let Some(complex) = complex else {
        push_decl(decls, name, ContentSpec::Empty, Vec::new())?;
        return Ok(());
    };

    let mixed = doc.attribute(complex, "mixed") == Some("true");
    let mut attributes = Vec::new();
    let mut particle: Option<Particle> = None;
    for &child in doc.children(complex) {
        if element_named(doc, child, "attribute") {
            attributes.push(parse_attribute(doc, child)?);
        } else if element_named(doc, child, "sequence") || element_named(doc, child, "choice") {
            if particle.is_some() {
                return Err(DtdError::new(format!(
                    "element `{name}`: multiple content groups are not supported"
                )));
            }
            particle = Some(parse_group(doc, child, decls)?);
        }
    }

    let spec = match (particle, mixed) {
        (None, false) => ContentSpec::Empty,
        (None, true) => ContentSpec::Mixed(vec![]),
        (Some(p), false) => ContentSpec::Children(p),
        (Some(p), true) => ContentSpec::MixedChildren(p),
    };
    push_decl(decls, name, spec, attributes)?;
    Ok(())
}

fn push_decl(
    decls: &mut Vec<(String, ContentSpec, Vec<AttDef>)>,
    name: String,
    spec: ContentSpec,
    attributes: Vec<AttDef>,
) -> Result<()> {
    if let Some((_, existing, _)) = decls.iter().find(|(n, _, _)| *n == name) {
        if *existing != spec {
            return Err(DtdError::new(format!(
                "element `{name}` declared twice with different content models"
            )));
        }
        return Ok(());
    }
    decls.push((name, spec, attributes));
    Ok(())
}

fn parse_attribute(doc: &Document, node: NodeId) -> Result<AttDef> {
    let name = doc
        .attribute(node, "name")
        .ok_or_else(|| DtdError::new("xs:attribute without a name"))?
        .to_string();
    let att_type = doc
        .attribute(node, "type")
        .map(|t| local_name(t).to_uppercase())
        .unwrap_or_else(|| "CDATA".to_string());
    let default = match doc.attribute(node, "use") {
        Some("required") => AttDefault::Required,
        _ => match doc.attribute(node, "default") {
            Some(v) => AttDefault::Default(v.to_string()),
            None => AttDefault::Implied,
        },
    };
    Ok(AttDef {
        name,
        att_type: if att_type == "STRING" {
            "CDATA".to_string()
        } else {
            att_type
        },
        default,
    })
}

/// Parses an `xs:sequence` or `xs:choice` group into a particle, hoisting
/// inline element declarations.
fn parse_group(
    doc: &Document,
    group: NodeId,
    decls: &mut Vec<(String, ContentSpec, Vec<AttDef>)>,
) -> Result<Particle> {
    let mut parts = Vec::new();
    for &child in doc.children(group) {
        let base = if element_named(doc, child, "element") {
            collect_element(doc, child, decls)?;
            let name = doc
                .attribute(child, "name")
                .or_else(|| doc.attribute(child, "ref"))
                .ok_or_else(|| DtdError::new("xs:element needs name= or ref="))?;
            ParticleName(name.to_string())
        } else if element_named(doc, child, "sequence") || element_named(doc, child, "choice") {
            ParticleGroup(parse_group(doc, child, decls)?)
        } else {
            continue; // annotations etc.
        };
        let particle = apply_occurs(doc, child, base, decls)?;
        parts.push(particle);
    }
    if parts.is_empty() {
        return Err(DtdError::new("empty content group"));
    }
    Ok(if element_named(doc, group, "sequence") {
        if parts.len() == 1 {
            parts.pop().expect("checked")
        } else {
            Particle::Seq(parts)
        }
    } else if parts.len() == 1 {
        parts.pop().expect("checked")
    } else {
        Particle::Choice(parts)
    })
}

enum PendingParticle {
    ParticleName(String),
    ParticleGroup(Particle),
}
use PendingParticle::*;

fn apply_occurs(
    doc: &Document,
    node: NodeId,
    base: PendingParticle,
    decls: &mut Vec<(String, ContentSpec, Vec<AttDef>)>,
) -> Result<Particle> {
    // Names must be interned against the final symbol table, which doesn't
    // exist yet; defer by rendering names into a placeholder particle that
    // `build_dtd` resolves. We cheat minimally: keep names as single-name
    // particles in a side table keyed by position. To avoid that
    // complexity, names are resolved in `build_dtd` via the DTD text
    // round-trip — here we emit textual DTD content models instead.
    let _ = decls;
    let min: u32 = doc
        .attribute(node, "minOccurs")
        .map(|v| v.parse().map_err(|_| DtdError::new("bad minOccurs")))
        .transpose()?
        .unwrap_or(1);
    let max: Option<u32> = match doc.attribute(node, "maxOccurs") {
        None => Some(1),
        Some("unbounded") => None,
        Some(v) => Some(v.parse().map_err(|_| DtdError::new("bad maxOccurs"))?),
    };
    let base = match base {
        ParticleName(n) => Particle::Name(crate::symbol::Symbol::from_index(intern_placeholder(n))),
        ParticleGroup(p) => p,
    };
    particle_with_occurs(base, min, max)
}

// ---------------------------------------------------------------------
// Name interning workaround: XSD parsing happens before the Dtd's symbol
// table exists. We render the whole schema to DTD text and re-parse it,
// which keeps one single authoritative build path. The placeholder
// interner assigns stable indices to names for the intermediate particle
// representation used during rendering.
// ---------------------------------------------------------------------

use std::cell::RefCell;

thread_local! {
    static PLACEHOLDER_NAMES: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn intern_placeholder(name: String) -> usize {
    PLACEHOLDER_NAMES.with(|names| {
        let mut names = names.borrow_mut();
        if let Some(i) = names.iter().position(|n| *n == name) {
            i
        } else {
            names.push(name);
            names.len() - 1
        }
    })
}

fn placeholder_name(index: usize) -> String {
    PLACEHOLDER_NAMES.with(|names| names.borrow()[index].clone())
}

fn particle_with_occurs(base: Particle, min: u32, max: Option<u32>) -> Result<Particle> {
    Ok(match (min, max) {
        (1, Some(1)) => base,
        (0, Some(1)) => Particle::Opt(Box::new(base)),
        (0, None) => Particle::Star(Box::new(base)),
        (1, None) => Particle::Plus(Box::new(base)),
        (min, Some(max)) if max >= min && max <= 8 => {
            // Expand small bounded repetitions: base^min, (base?)^(max-min).
            let mut parts = Vec::new();
            for _ in 0..min {
                parts.push(base.clone());
            }
            for _ in min..max {
                parts.push(Particle::Opt(Box::new(base.clone())));
            }
            match parts.len() {
                0 => Particle::Epsilon,
                1 => parts.pop().expect("checked"),
                _ => Particle::Seq(parts),
            }
        }
        (min, None) if min <= 8 => {
            let mut parts = Vec::new();
            for _ in 0..min.saturating_sub(1) {
                parts.push(base.clone());
            }
            parts.push(Particle::Plus(Box::new(base)));
            if parts.len() == 1 {
                parts.pop().expect("checked")
            } else {
                Particle::Seq(parts)
            }
        }
        _ => {
            return Err(DtdError::new(
                "maxOccurs bounds above 8 are not supported (expansion would explode)",
            ))
        }
    })
}

/// Renders collected declarations as DTD text and runs the normal DTD
/// build, keeping a single authoritative pipeline for automata and
/// constraints.
fn build_dtd(decls: Vec<(String, ContentSpec, Vec<AttDef>)>, root: &str) -> Result<Dtd> {
    let mut text = String::new();
    let mut mixed_children: Vec<String> = Vec::new();
    for (name, spec, attributes) in &decls {
        text.push_str("<!ELEMENT ");
        text.push_str(name);
        text.push(' ');
        match spec {
            ContentSpec::Empty => text.push_str("EMPTY"),
            ContentSpec::Any => text.push_str("ANY"),
            ContentSpec::Mixed(_) => text.push_str("(#PCDATA)"),
            ContentSpec::Children(p) => render_particle(p, &mut text),
            ContentSpec::MixedChildren(p) => {
                // DTD syntax cannot express "regex + text"; render the
                // regex and record the element for a text_allowed patch.
                render_particle(p, &mut text);
                mixed_children.push(name.clone());
            }
        }
        text.push_str(">\n");
        if !attributes.is_empty() {
            text.push_str("<!ATTLIST ");
            text.push_str(name);
            for att in attributes {
                text.push(' ');
                text.push_str(&att.name);
                text.push(' ');
                text.push_str(if att.att_type.is_empty() {
                    "CDATA"
                } else {
                    &att.att_type
                });
                match &att.default {
                    AttDefault::Required => text.push_str(" #REQUIRED"),
                    AttDefault::Implied => text.push_str(" #IMPLIED"),
                    AttDefault::Fixed(v) => {
                        text.push_str(" #FIXED \"");
                        text.push_str(v);
                        text.push('"');
                    }
                    AttDefault::Default(v) => {
                        text.push_str(" \"");
                        text.push_str(v);
                        text.push('"');
                    }
                }
            }
            text.push_str(">\n");
        }
    }
    let mut dtd = Dtd::parse_with_root(&text, root)?;
    for name in mixed_children {
        dtd.allow_text(&name);
    }
    PLACEHOLDER_NAMES.with(|names| names.borrow_mut().clear());
    Ok(dtd)
}

fn render_particle(p: &Particle, out: &mut String) {
    match p {
        Particle::Epsilon => out.push_str("EMPTY"),
        Particle::Name(s) => {
            out.push('(');
            out.push_str(&placeholder_name(s.index()));
            out.push(')');
        }
        _ => {
            render_inner(p, out);
        }
    }
}

fn render_inner(p: &Particle, out: &mut String) {
    match p {
        Particle::Epsilon => out.push_str("()"),
        Particle::Name(s) => out.push_str(&placeholder_name(s.index())),
        Particle::Seq(parts) => {
            out.push('(');
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_inner(part, out);
            }
            out.push(')');
        }
        Particle::Choice(parts) => {
            out.push('(');
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                render_inner(part, out);
            }
            out.push(')');
        }
        Particle::Opt(inner) => {
            wrap(inner, out);
            out.push('?');
        }
        Particle::Star(inner) => {
            wrap(inner, out);
            out.push('*');
        }
        Particle::Plus(inner) => {
            wrap(inner, out);
            out.push('+');
        }
    }
}

fn wrap(p: &Particle, out: &mut String) {
    match p {
        Particle::Name(_) => {
            out.push('(');
            render_inner(p, out);
            out.push(')');
        }
        _ => render_inner(p, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An XSD equivalent of the paper's Figure 1 DTD.
    const FIG1_XSD: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="bib">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="book" minOccurs="0" maxOccurs="unbounded">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="title" type="xs:string"/>
                  <xs:choice>
                    <xs:element name="author" type="xs:string" maxOccurs="unbounded"/>
                    <xs:element name="editor" type="xs:string" maxOccurs="unbounded"/>
                  </xs:choice>
                  <xs:element name="publisher" type="xs:string"/>
                  <xs:element name="price" type="xs:string"/>
                </xs:sequence>
                <xs:attribute name="year" type="xs:string" use="required"/>
              </xs:complexType>
            </xs:element>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
    </xs:schema>"#;

    #[test]
    fn fig1_constraints_from_xsd() {
        let dtd = parse_xsd(FIG1_XSD).unwrap();
        assert_eq!(dtd.name(dtd.root().unwrap()), "bib");
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let author = dtd.lookup("author").unwrap();
        let editor = dtd.lookup("editor").unwrap();
        let publisher = dtd.lookup("publisher").unwrap();
        // The same constraints the DTD frontend derives (paper footnote 1).
        assert!(dtd.all_before(book, title, author));
        assert!(dtd.never_together(book, author, editor));
        assert!(dtd.at_most_one(book, publisher));
        assert!(dtd.exactly_one(book, title));
        // Attributes survive.
        let decl = dtd.element(book).unwrap();
        assert_eq!(decl.attlist.len(), 1);
        assert_eq!(decl.attlist[0].name, "year");
    }

    #[test]
    fn bounded_occurs_expanded() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r">
            <xs:complexType><xs:sequence>
              <xs:element name="x" type="xs:string" minOccurs="1" maxOccurs="3"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let dtd = parse_xsd(xsd).unwrap();
        let r = dtd.lookup("r").unwrap();
        let x = dtd.lookup("x").unwrap();
        let dfa = &dtd.element(r).unwrap().dfa;
        assert!(dfa.accepts([x]));
        assert!(dfa.accepts([x, x]));
        assert!(dfa.accepts([x, x, x]));
        assert!(!dfa.accepts([]));
        assert!(!dfa.accepts([x, x, x, x]));
        assert!(dtd.at_least_one(r, x));
        assert!(!dtd.at_most_one(r, x));
    }

    #[test]
    fn mixed_content_allows_text() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="p">
            <xs:complexType mixed="true"><xs:sequence>
              <xs:element name="em" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let dtd = parse_xsd(xsd).unwrap();
        let p = dtd.lookup("p").unwrap();
        assert!(dtd.text_allowed(p));
        let em = dtd.lookup("em").unwrap();
        // Text interleaves freely: no order constraint involving text.
        assert!(!dtd.all_before(p, crate::SymbolTable::TEXT, em));
    }

    #[test]
    fn empty_element() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="top">
            <xs:complexType><xs:sequence>
              <xs:element name="leaf"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let dtd = parse_xsd(xsd).unwrap();
        let leaf = dtd.lookup("leaf").unwrap();
        assert!(matches!(
            dtd.element(leaf).unwrap().spec,
            ContentSpec::Empty
        ));
    }

    #[test]
    fn rejects_non_schema() {
        assert!(parse_xsd("<html/>").is_err());
        assert!(parse_xsd("not xml").is_err());
        assert!(parse_xsd("<xs:schema xmlns:xs=\"x\"/>").is_err());
    }

    #[test]
    fn unknown_simple_type_rejected() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r" type="xs:banana"/>
        </xs:schema>"#;
        assert!(parse_xsd(xsd).is_err());
    }
}
