//! Decodes a stream produced by a real reference encoder (GNU gzip -9,
//! dynamic Huffman blocks) — the committed fixture pins compatibility
//! beyond our own stored-block encoder.
use std::io::Read;

#[test]
fn dynamic_huffman_from_reference_encoder() {
    let fixture: &[u8] = include_bytes!("fixtures/sample.xml.gz");
    let mut out = Vec::new();
    miniflate::GzDecoder::new(fixture)
        .read_to_end(&mut out)
        .expect("reference gzip stream decodes");
    let expected: &[u8] = include_bytes!("fixtures/sample.xml");
    assert_eq!(out, expected);
}
