//! Recursive-descent parser for the supported XQuery fragment.
//!
//! Handles FLWOR expressions (`for`/`let`/`where`/`return`), conditionals,
//! direct element constructors with attribute value templates, paths,
//! string literals with doubled-quote escapes, `(: ... :)` comments, and
//! both symbolic (`=`, `<=`) and word (`eq`, `le`) comparison operators.
//!
//! Boundary whitespace in element constructors is stripped, as in XQuery's
//! default mode: `<r> {$x} </r>` has no text nodes around `{$x}`.

use crate::ast::*;
use crate::error::{QueryPos, Result, XQueryError};

pub struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete query.
pub fn parse_query(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let expr = p.parse_expr_seq()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(expr)
}

impl<'a> Parser<'a> {
    pub fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> XQueryError {
        XQueryError::Parse {
            message: message.into(),
            pos: QueryPos::of(self.input, self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<u8> {
        self.bytes.get(self.pos + n).copied()
    }

    fn looking_at(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.looking_at(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// Skips whitespace and `(: ... :)` comments (which may nest).
    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.looking_at("(:") {
                let mut depth = 0;
                while self.pos < self.bytes.len() {
                    if self.looking_at("(:") {
                        depth += 1;
                        self.pos += 2;
                    } else if self.looking_at(":)") {
                        depth -= 1;
                        self.pos += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        self.pos += 1;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || matches!(b, b'-' | b'.' | b':')
    }

    /// Consumes the keyword `kw` only when followed by a non-name character.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if !self.looking_at(kw) {
            return false;
        }
        match self.peek_at(kw.len()) {
            Some(b) if Self::is_name_char(b) => false,
            _ => {
                self.pos += kw.len();
                true
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            _ => return Err(self.err("expected a name")),
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if Self::is_name_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_var_name(&mut self) -> Result<VarName> {
        self.expect("$")?;
        let name = self.parse_name()?;
        if name.starts_with(GENERATED_VAR_PREFIX) {
            return Err(self.err(format!(
                "variable names starting with `{GENERATED_VAR_PREFIX}` are reserved"
            )));
        }
        Ok(name)
    }

    /// String literal with XQuery-style doubled-quote escapes:
    /// `"say ""hi"""` is `say "hi"`.
    fn parse_string_lit(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a string literal")),
        };
        self.pos += 1;
        let mut out = String::new();
        let start = self.pos;
        let mut run_start = start;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string literal")),
                Some(b) if b == quote => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    if self.peek() == Some(quote) {
                        // Doubled quote: literal quote character.
                        out.push(quote as char);
                        self.pos += 1;
                        run_start = self.pos;
                    } else {
                        return Ok(out);
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    // ----- expressions -----

    pub fn parse_expr_seq(&mut self) -> Result<Expr> {
        let mut items = vec![self.parse_expr()?];
        loop {
            self.skip_ws();
            if self.eat(",") {
                self.skip_ws();
                items.push(self.parse_expr()?);
            } else {
                return Ok(Expr::seq(items));
            }
        }
    }

    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.skip_ws();
        if self.eat_keyword("for") {
            return self.parse_for();
        }
        if self.eat_keyword("let") {
            return self.parse_let();
        }
        if self.eat_keyword("if") {
            return self.parse_if();
        }
        match self.peek() {
            Some(b'<') => self.parse_constructor(),
            Some(b'"') | Some(b'\'') => Ok(Expr::StringLit(self.parse_string_lit()?)),
            Some(b'(') => {
                self.pos += 1;
                self.skip_ws();
                if self.eat(")") {
                    return Ok(Expr::Empty);
                }
                let inner = self.parse_expr_seq()?;
                self.skip_ws();
                self.expect(")")?;
                Ok(inner)
            }
            Some(b'$') => {
                let path = self.parse_path()?;
                if path.steps.is_empty() {
                    Ok(Expr::Var(path.start))
                } else {
                    Ok(Expr::Path(path))
                }
            }
            Some(b) if b.is_ascii_digit() => Err(self.err(
                "numeric literals are only supported inside conditions; \
                 wrap output numbers in a string literal",
            )),
            _ => Err(self.err("expected an expression")),
        }
    }

    fn parse_for(&mut self) -> Result<Expr> {
        // `for` already consumed. Parse comma-separated bindings, an
        // optional where clause, and the return body; desugar to nested
        // single-binding loops with the where on the innermost.
        let mut bindings: Vec<(VarName, Path)> = Vec::new();
        loop {
            self.skip_ws();
            let var = self.parse_var_name()?;
            self.skip_ws();
            if !self.eat_keyword("in") {
                return Err(self.err("expected `in`"));
            }
            self.skip_ws();
            let source = self.parse_path()?;
            if source.steps.is_empty() {
                return Err(self.err("for-loop source must have at least one step"));
            }
            if !source.is_element_path() {
                return Err(XQueryError::unsupported(
                    "for-loop over attribute or text() steps",
                ));
            }
            bindings.push((var, source));
            self.skip_ws();
            if !self.eat(",") {
                break;
            }
        }
        self.skip_ws();
        let where_clause = if self.eat_keyword("where") {
            Some(Box::new(self.parse_cond()?))
        } else {
            None
        };
        self.skip_ws();
        if !self.eat_keyword("return") {
            return Err(self.err("expected `return`"));
        }
        let body = self.parse_expr()?;
        // Fold right-to-left; the innermost binding carries the where clause.
        let last = bindings.len() - 1;
        let mut expr = body;
        let mut pending_where = where_clause;
        for (i, (var, source)) in bindings.into_iter().enumerate().rev() {
            let wc = if i == last {
                pending_where.take()
            } else {
                None
            };
            expr = Expr::For {
                var,
                source,
                where_clause: wc,
                body: Box::new(expr),
            };
        }
        Ok(expr)
    }

    fn parse_let(&mut self) -> Result<Expr> {
        // `let` already consumed: `$v := expr (, $w := expr)* return body`.
        let mut bindings: Vec<(VarName, Expr)> = Vec::new();
        loop {
            self.skip_ws();
            let var = self.parse_var_name()?;
            self.skip_ws();
            self.expect(":=")?;
            let value = self.parse_expr()?;
            bindings.push((var, value));
            self.skip_ws();
            if !self.eat(",") {
                break;
            }
        }
        self.skip_ws();
        if !self.eat_keyword("return") {
            return Err(self.err("expected `return`"));
        }
        let body = self.parse_expr()?;
        let mut expr = body;
        for (var, value) in bindings.into_iter().rev() {
            expr = Expr::Let {
                var,
                value: Box::new(value),
                body: Box::new(expr),
            };
        }
        Ok(expr)
    }

    fn parse_if(&mut self) -> Result<Expr> {
        self.skip_ws();
        self.expect("(")?;
        let cond = self.parse_cond()?;
        self.skip_ws();
        self.expect(")")?;
        self.skip_ws();
        if !self.eat_keyword("then") {
            return Err(self.err("expected `then`"));
        }
        let then_branch = self.parse_expr()?;
        self.skip_ws();
        if !self.eat_keyword("else") {
            return Err(self.err("expected `else` (XQuery requires an else branch)"));
        }
        let else_branch = self.parse_expr()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    fn parse_path(&mut self) -> Result<Path> {
        self.expect("$")?;
        let start = self.parse_name()?;
        if start.starts_with(GENERATED_VAR_PREFIX) {
            return Err(self.err(format!(
                "variable names starting with `{GENERATED_VAR_PREFIX}` are reserved"
            )));
        }
        let mut steps = Vec::new();
        while self.peek() == Some(b'/') {
            if self.looking_at("//") {
                return Err(XQueryError::unsupported(
                    "the descendant axis `//` (the optimizing engine schedules child steps only)",
                ));
            }
            self.pos += 1;
            if let Some(last) = steps.last() {
                if !matches!(last, Step::Child(_)) {
                    return Err(self.err("no steps may follow @attribute or text()"));
                }
            }
            if self.eat("@") {
                let name = self.parse_name()?;
                steps.push(Step::Attribute(name));
            } else if self.eat("text()") {
                steps.push(Step::Text);
            } else {
                let name = self.parse_name()?;
                if name == "text" {
                    return Err(self.err("write `text()` for the text step"));
                }
                steps.push(Step::Child(name));
            }
        }
        Ok(Path { start, steps })
    }

    // ----- element constructors -----

    fn parse_constructor(&mut self) -> Result<Expr> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("/>") {
                return Ok(Expr::Element {
                    name,
                    attributes,
                    content: Box::new(Expr::Empty),
                });
            }
            if self.eat(">") {
                break;
            }
            let attr_name = self.parse_name()?;
            self.skip_ws();
            self.expect("=")?;
            self.skip_ws();
            let value = self.parse_attr_value()?;
            attributes.push(AttrConstructor {
                name: attr_name,
                value,
            });
        }
        let content = self.parse_content(&name)?;
        Ok(Expr::Element {
            name,
            attributes,
            content: Box::new(content),
        })
    }

    fn parse_attr_value(&mut self) -> Result<Vec<AttrPart>> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.pos += 1;
        let mut parts = Vec::new();
        let mut literal = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'{') => {
                    self.pos += 1;
                    if !literal.is_empty() {
                        parts.push(AttrPart::Literal(std::mem::take(&mut literal)));
                    }
                    let expr = self.parse_expr_seq()?;
                    self.skip_ws();
                    self.expect("}")?;
                    parts.push(AttrPart::Expr(expr));
                }
                Some(b'&') => {
                    let entity = self.parse_entity()?;
                    literal.push(entity);
                }
                Some(b) => {
                    literal.push(b as char);
                    self.pos += 1;
                    // Multi-byte UTF-8: copy the continuation bytes verbatim.
                    if b >= 0x80 {
                        literal.pop();
                        let s = &self.input[self.pos - 1..];
                        let ch = s.chars().next().expect("valid UTF-8");
                        literal.push(ch);
                        self.pos += ch.len_utf8() - 1;
                    }
                }
            }
        }
        if !literal.is_empty() {
            parts.push(AttrPart::Literal(literal));
        }
        Ok(parts)
    }

    fn parse_entity(&mut self) -> Result<char> {
        self.expect("&")?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = &self.input[start..self.pos];
                self.pos += 1;
                return flux_xml::escape::resolve_entity(name)
                    .ok_or_else(|| self.err(format!("unknown entity `&{name};`")));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated entity reference"))
    }

    fn parse_content(&mut self, element_name: &str) -> Result<Expr> {
        let mut items: Vec<Expr> = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated <{element_name}> constructor"))),
                Some(b'<') => {
                    if self.looking_at("</") {
                        flush_text(&mut text, &mut items);
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != element_name {
                            return Err(self.err(format!(
                                "mismatched constructor tags: <{element_name}> closed by </{close}>"
                            )));
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        return Ok(Expr::seq(items));
                    }
                    flush_text(&mut text, &mut items);
                    items.push(self.parse_constructor()?);
                }
                Some(b'{') => {
                    self.pos += 1;
                    flush_text(&mut text, &mut items);
                    self.skip_ws();
                    let expr = self.parse_expr_seq()?;
                    self.skip_ws();
                    self.expect("}")?;
                    items.push(expr);
                }
                Some(b'&') => {
                    let entity = self.parse_entity()?;
                    text.push(entity);
                }
                Some(b) => {
                    if b >= 0x80 {
                        let s = &self.input[self.pos..];
                        let ch = s.chars().next().expect("valid UTF-8");
                        text.push(ch);
                        self.pos += ch.len_utf8();
                    } else {
                        text.push(b as char);
                        self.pos += 1;
                    }
                }
            }
        }
    }

    // ----- conditions -----

    pub fn parse_cond(&mut self) -> Result<Cond> {
        let mut lhs = self.parse_cond_and()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("or") {
                let rhs = self.parse_cond_and()?;
                lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_cond_and(&mut self) -> Result<Cond> {
        let mut lhs = self.parse_cond_primary()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("and") {
                let rhs = self.parse_cond_primary()?;
                lhs = Cond::And(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_cond_primary(&mut self) -> Result<Cond> {
        self.skip_ws();
        if self.eat_keyword("not") {
            self.skip_ws();
            self.expect("(")?;
            let inner = self.parse_cond()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.eat_keyword("exists") {
            self.skip_ws();
            self.expect("(")?;
            self.skip_ws();
            let path = self.parse_path()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(Cond::Exists(path));
        }
        if self.eat_keyword("empty") {
            self.skip_ws();
            self.expect("(")?;
            self.skip_ws();
            let path = self.parse_path()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(Cond::Empty(path));
        }
        if self.eat_keyword("true") {
            self.skip_ws();
            self.expect("(")?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(Cond::True);
        }
        if self.eat_keyword("false") {
            self.skip_ws();
            self.expect("(")?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(Cond::False);
        }
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let inner = self.parse_cond()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(inner);
        }
        // Comparison or bare path (effective boolean value).
        let lhs = self.parse_operand()?;
        self.skip_ws();
        if let Some(op) = self.parse_cmp_op() {
            self.skip_ws();
            let rhs = self.parse_operand()?;
            return Ok(Cond::Cmp { lhs, op, rhs });
        }
        match lhs {
            Operand::Path(p) => Ok(Cond::Exists(p)),
            _ => Err(self.err("expected a comparison operator")),
        }
    }

    fn parse_cmp_op(&mut self) -> Option<CmpOp> {
        for (text, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(text) {
                return Some(op);
            }
        }
        for (kw, op) in [
            ("eq", CmpOp::Eq),
            ("ne", CmpOp::Ne),
            ("lt", CmpOp::Lt),
            ("le", CmpOp::Le),
            ("gt", CmpOp::Gt),
            ("ge", CmpOp::Ge),
        ] {
            if self.eat_keyword(kw) {
                return Some(op);
            }
        }
        None
    }

    fn parse_operand(&mut self) -> Result<Operand> {
        self.skip_ws();
        match self.peek() {
            Some(b'$') => Ok(Operand::Path(self.parse_path()?)),
            Some(b'"') | Some(b'\'') => Ok(Operand::StringLit(self.parse_string_lit()?)),
            Some(b) if b.is_ascii_digit() || b == b'-' => {
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                let mut saw_digit = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        saw_digit = true;
                        self.pos += 1;
                    } else if c == b'.' && saw_digit {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if !saw_digit {
                    return Err(self.err("expected a number"));
                }
                Ok(Operand::NumberLit(self.input[start..self.pos].to_string()))
            }
            _ => Err(self.err("expected a path, string or number")),
        }
    }
}

fn flush_text(text: &mut String, items: &mut Vec<Expr>) {
    if text.is_empty() {
        return;
    }
    let content = std::mem::take(text);
    // XQuery boundary-whitespace stripping: whitespace-only runs between
    // constructor items carry no text node.
    if content
        .bytes()
        .all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
    {
        return;
    }
    items.push(Expr::StringLit(content));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XMP Q3 from the paper.
    const Q3: &str = r#"<results>
      { for $b in $ROOT/bib/book return
          <result> { $b/title } { $b/author } </result> }
    </results>"#;

    #[test]
    fn parse_paper_q3() {
        let expr = parse_query(Q3).unwrap();
        match &expr {
            Expr::Element { name, content, .. } => {
                assert_eq!(name, "results");
                match &**content {
                    Expr::For {
                        var, source, body, ..
                    } => {
                        assert_eq!(var, "b");
                        assert_eq!(source.to_string(), "$ROOT/bib/book");
                        match &**body {
                            Expr::Element { name, content, .. } => {
                                assert_eq!(name, "result");
                                match &**content {
                                    Expr::Sequence(items) => {
                                        assert_eq!(items.len(), 2);
                                        assert_eq!(
                                            items[0],
                                            Expr::Path(Path::var("b").child("title"))
                                        );
                                        assert_eq!(
                                            items[1],
                                            Expr::Path(Path::var("b").child("author"))
                                        );
                                    }
                                    other => panic!("expected sequence, got {other:?}"),
                                }
                            }
                            other => panic!("expected result constructor, got {other:?}"),
                        }
                    }
                    other => panic!("expected for, got {other:?}"),
                }
            }
            other => panic!("expected results constructor, got {other:?}"),
        }
    }

    #[test]
    fn boundary_whitespace_stripped() {
        let expr = parse_query("<r> <a/> <b/> </r>").unwrap();
        match expr {
            Expr::Element { content, .. } => match *content {
                Expr::Sequence(items) => assert_eq!(items.len(), 2),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn significant_text_kept() {
        let expr = parse_query("<r>hello <b/></r>").unwrap();
        match expr {
            Expr::Element { content, .. } => match *content {
                Expr::Sequence(items) => {
                    assert_eq!(items[0], Expr::StringLit("hello ".into()));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_binding_for_desugars() {
        let expr = parse_query(
            "for $a in $ROOT/r/x, $b in $ROOT/r/y where $a/k = $b/k return <p>{$a}{$b}</p>",
        )
        .unwrap();
        match expr {
            Expr::For {
                var,
                where_clause,
                body,
                ..
            } => {
                assert_eq!(var, "a");
                assert!(where_clause.is_none(), "where belongs to the inner loop");
                match *body {
                    Expr::For {
                        var, where_clause, ..
                    } => {
                        assert_eq!(var, "b");
                        assert!(where_clause.is_some());
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_chain() {
        let expr = parse_query("let $x := \"1\", $y := \"2\" return <r>{$x}{$y}</r>").unwrap();
        match expr {
            Expr::Let { var, body, .. } => {
                assert_eq!(var, "x");
                assert!(matches!(*body, Expr::Let { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_condition() {
        let expr = parse_query(
            r#"if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit/> else ()"#,
        )
        .unwrap();
        match expr {
            Expr::If {
                cond, else_branch, ..
            } => {
                assert!(matches!(*cond, Cond::And(_, _)));
                assert_eq!(*else_branch, Expr::Empty);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparison_operators() {
        for (q, op) in [
            ("if ($a/x = 1) then () else ()", CmpOp::Eq),
            ("if ($a/x != 1) then () else ()", CmpOp::Ne),
            ("if ($a/x < 1) then () else ()", CmpOp::Lt),
            ("if ($a/x <= 1) then () else ()", CmpOp::Le),
            ("if ($a/x > 1) then () else ()", CmpOp::Gt),
            ("if ($a/x >= 1) then () else ()", CmpOp::Ge),
            ("if ($a/x eq 1) then () else ()", CmpOp::Eq),
            ("if ($a/x lt 1) then () else ()", CmpOp::Lt),
        ] {
            let expr = parse_query(q).unwrap();
            match expr {
                Expr::If { cond, .. } => match *cond {
                    Cond::Cmp { op: got, .. } => assert_eq!(got, op, "{q}"),
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn bare_path_condition_is_exists() {
        let expr = parse_query("if ($b/author) then <x/> else ()").unwrap();
        match expr {
            Expr::If { cond, .. } => {
                assert_eq!(*cond, Cond::Exists(Path::var("b").child("author")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_and_text_paths() {
        let expr = parse_query("<r>{$b/@year}{$b/title/text()}</r>").unwrap();
        match expr {
            Expr::Element { content, .. } => match *content {
                Expr::Sequence(items) => {
                    assert!(matches!(&items[0], Expr::Path(p) if p.to_string() == "$b/@year"));
                    assert!(
                        matches!(&items[1], Expr::Path(p) if p.to_string() == "$b/title/text()")
                    );
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_value_templates() {
        let expr = parse_query(r#"<r year="{$b/@year}!"/>"#).unwrap();
        match expr {
            Expr::Element { attributes, .. } => {
                assert_eq!(attributes.len(), 1);
                assert_eq!(attributes[0].value.len(), 2);
                assert!(matches!(&attributes[0].value[0], AttrPart::Expr(_)));
                assert_eq!(attributes[0].value[1], AttrPart::Literal("!".to_string()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn descendant_axis_rejected() {
        let err = parse_query("<r>{$ROOT//book}</r>").unwrap_err();
        assert!(matches!(err, XQueryError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn steps_after_attribute_rejected() {
        assert!(parse_query("<r>{$b/@year/x}</r>").is_err());
    }

    #[test]
    fn reserved_prefix_rejected() {
        assert!(parse_query("<r>{$__flux1}</r>").is_err());
    }

    #[test]
    fn comments_skipped() {
        let expr = parse_query("(: outer (: nested :) still comment :) <r/>").unwrap();
        assert!(matches!(expr, Expr::Element { .. }));
    }

    #[test]
    fn doubled_quotes_in_strings() {
        let expr = parse_query(r#"<r>{"say ""hi"""}</r>"#).unwrap();
        match expr {
            Expr::Element { content, .. } => {
                assert_eq!(*content, Expr::StringLit("say \"hi\"".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entities_in_content() {
        let expr = parse_query("<r>a &amp; b</r>").unwrap();
        match expr {
            Expr::Element { content, .. } => {
                assert_eq!(*content, Expr::StringLit("a & b".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_sequence() {
        assert_eq!(parse_query("()").unwrap(), Expr::Empty);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("<r/> extra").is_err());
    }

    #[test]
    fn mismatched_constructor_tags_rejected() {
        let err = parse_query("<r></s>").unwrap_err();
        assert!(err.to_string().contains("mismatched"), "{err}");
    }

    #[test]
    fn exists_empty_not() {
        let expr = parse_query("if (not(empty($b/author)) and exists($b/title)) then <x/> else ()")
            .unwrap();
        assert!(matches!(expr, Expr::If { .. }));
    }

    #[test]
    fn nested_constructors_in_content() {
        let expr = parse_query("<a><b><c/></b></a>").unwrap();
        match expr {
            Expr::Element { name, content, .. } => {
                assert_eq!(name, "a");
                assert!(matches!(*content, Expr::Element { .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
