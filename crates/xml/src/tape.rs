//! The encoded event tape: a compact, replayable recording of an event
//! stream.
//!
//! A tape stores every payload byte exactly once, in one contiguous arena;
//! events and attributes are fixed-size headers holding spans into it.
//! Recording ([`EventTape::push`]) copies each payload into the arena —
//! the single materialisation the parallel pipeline pays per byte — and
//! replay ([`EventTape::view`]) hands out [`RawEventRef`] views whose
//! `&str` payloads borrow the arena directly: **zero copies and zero
//! allocations per replayed event**, which removes the serial term that
//! bounded sharded speedup at `1/(1/N + r)`.
//!
//! Each event also records the source [`Position`] at the moment it was
//! produced, so a replaying consumer (the sharded merger, XSAX) reports
//! error positions identical to a sequential run over the same bytes.
//!
//! Symbols on a tape may be *local* to the recording interner (a shard
//! worker's clone of the seed table). [`SymbolRemap`] translates them into
//! a merged namespace at view time: seed-prefix symbols pass through
//! untouched (clones preserve indices), later ones go through a dense
//! remap table.

use crate::error::Position;
use crate::event::{RawEventKind, RawEventRef};
use flux_symbols::{Symbol, SymbolTable};

/// Translation of tape-local symbols into a merged namespace.
///
/// Symbols below `seed_len` (and the [`SymbolTable::OVERFLOW`] sentinel)
/// are identical in both namespaces; a symbol at index `seed_len + i`
/// resolves to `remap[i]`.
#[derive(Debug, Clone, Copy)]
pub struct SymbolRemap<'a> {
    seed_len: usize,
    remap: &'a [Symbol],
    /// Literal spellings behind `remap`, index-aligned. Consulted when a
    /// translation *introduces* [`SymbolTable::OVERFLOW`] — a bounded
    /// merged table declined to intern the shard-local name — so views can
    /// still hand out the literal name through the event side channel.
    names: &'a [String],
}

impl<'a> SymbolRemap<'a> {
    pub fn new(seed_len: usize, remap: &'a [Symbol]) -> SymbolRemap<'a> {
        SymbolRemap {
            seed_len,
            remap,
            names: &[],
        }
    }

    /// A translation that can also resolve the literal spelling of symbols
    /// the merged table overflowed (`names` must be index-aligned with
    /// `remap`).
    pub fn with_names(
        seed_len: usize,
        remap: &'a [Symbol],
        names: &'a [String],
    ) -> SymbolRemap<'a> {
        SymbolRemap {
            seed_len,
            remap,
            names,
        }
    }

    /// The identity translation, for tapes recorded against the consumer's
    /// own interner.
    pub fn identity() -> SymbolRemap<'static> {
        SymbolRemap {
            seed_len: usize::MAX,
            remap: &[],
            names: &[],
        }
    }

    pub fn resolve(&self, sym: Symbol) -> Symbol {
        if sym == SymbolTable::OVERFLOW || sym.index() < self.seed_len {
            sym
        } else {
            self.remap[sym.index() - self.seed_len]
        }
    }

    /// The literal spelling of a tape-local symbol past the seed prefix,
    /// when the translation was built with names (see
    /// [`SymbolRemap::with_names`]).
    pub fn literal(&self, sym: Symbol) -> Option<&'a str> {
        if sym == SymbolTable::OVERFLOW || sym.index() < self.seed_len {
            return None;
        }
        self.names
            .get(sym.index() - self.seed_len)
            .map(String::as_str)
    }
}

/// One encoded event: fixed-size header plus spans into the tape arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncEvent {
    kind: RawEventKind,
    /// Tape-local symbol (resolve through a [`SymbolRemap`]).
    name: Symbol,
    /// Range into [`EventTape::attrs`].
    attrs: (usize, usize),
    /// Arena span of the text payload.
    text: (usize, usize),
    /// Arena span of the target payload (PI target, doctype name,
    /// overflow element name).
    target: (usize, usize),
    has_internal_subset: bool,
    text_synthetic: bool,
    /// Source position of the first byte of this event's construct.
    start: Position,
    /// Source position just after this event was produced.
    pos: Position,
}

/// One encoded attribute: tape-local name plus arena spans.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncAttr {
    pub(crate) name: Symbol,
    /// Literal name span when `name` is [`SymbolTable::OVERFLOW`]; empty
    /// otherwise.
    pub(crate) overflow: (usize, usize),
    pub(crate) value: (usize, usize),
}

/// A recorded event stream, replayable without copies.
#[derive(Debug, Default)]
pub struct EventTape {
    events: Vec<EncEvent>,
    attrs: Vec<EncAttr>,
    /// All string payloads, concatenated (events and attrs hold spans).
    arena: String,
}

impl EventTape {
    pub fn new() -> EventTape {
        EventTape::default()
    }

    /// A tape with pre-reserved capacity (events and arena bytes), so the
    /// recording loop does not regrow in its steady state.
    pub fn with_capacity(events: usize, arena_bytes: usize) -> EventTape {
        EventTape {
            events: Vec::with_capacity(events),
            attrs: Vec::new(),
            arena: String::with_capacity(arena_bytes),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Bytes this tape occupies: the payload arena plus the encoded event
    /// and attribute headers. Reported per shard in the telemetry
    /// pipeline timeline.
    pub fn byte_size(&self) -> usize {
        self.arena.len()
            + self.events.len() * std::mem::size_of::<EncEvent>()
            + self.attrs.len() * std::mem::size_of::<EncAttr>()
    }

    fn span(&mut self, text: &str) -> (usize, usize) {
        let start = self.arena.len();
        self.arena.push_str(text);
        (start, self.arena.len())
    }

    /// Records one event (copies its payloads into the arena). `start` is
    /// the source position of the construct's first byte (where the
    /// sequential reader reports document-level errors such as a second
    /// root element); `pos` is the position just after the event was
    /// produced. Both are replayed back by [`EventTape::start_position`] /
    /// [`EventTape::position`] so replay errors carry sequential positions.
    pub fn push(&mut self, ev: &RawEventRef<'_>, start: Position, pos: Position) {
        let attrs_start = self.attrs.len();
        for attr in ev.attrs() {
            let overflow = self.span(attr.overflow_name);
            let value = self.span(attr.value);
            self.attrs.push(EncAttr {
                name: attr.name,
                overflow,
                value,
            });
        }
        let text = self.span(ev.text());
        let target = self.span(ev.target());
        self.events.push(EncEvent {
            kind: ev.kind(),
            name: ev.name(),
            attrs: (attrs_start, self.attrs.len()),
            text,
            target,
            has_internal_subset: ev.internal_subset().is_some(),
            text_synthetic: ev.is_text_synthetic(),
            start,
            pos,
        });
    }

    /// The kind of event `i`.
    pub fn kind(&self, i: usize) -> RawEventKind {
        self.events[i].kind
    }

    /// The tape-local name symbol of event `i`.
    pub fn name(&self, i: usize) -> Symbol {
        self.events[i].name
    }

    /// The text payload of event `i`.
    pub fn text(&self, i: usize) -> &str {
        let (s, e) = self.events[i].text;
        &self.arena[s..e]
    }

    /// Whether event `i`'s text involved entity references or CDATA.
    pub fn text_synthetic(&self, i: usize) -> bool {
        self.events[i].text_synthetic
    }

    /// The recorded source position of event `i`.
    pub fn position(&self, i: usize) -> Position {
        self.events[i].pos
    }

    /// The recorded source position of the first byte of event `i`.
    pub fn start_position(&self, i: usize) -> Position {
        self.events[i].start
    }

    /// A zero-copy view of event `i`, names translated through `remap`.
    ///
    /// When the translation maps an element's tape-local symbol to
    /// [`SymbolTable::OVERFLOW`] (bounded merged table), the literal name
    /// is served through the event's side channel (`target`, the
    /// `name_str` convention) so no consumer ever loses the spelling.
    pub fn view<'a>(&'a self, i: usize, remap: SymbolRemap<'a>) -> RawEventRef<'a> {
        let e = &self.events[i];
        let name = remap.resolve(e.name);
        let mut target = &self.arena[e.target.0..e.target.1];
        if name == SymbolTable::OVERFLOW && e.name != SymbolTable::OVERFLOW {
            if let Some(literal) = remap.literal(e.name) {
                target = literal;
            }
        }
        RawEventRef::from_tape(
            e.kind,
            name,
            &self.arena[e.text.0..e.text.1],
            target,
            e.has_internal_subset,
            e.text_synthetic,
            &self.attrs[e.attrs.0..e.attrs.1],
            &self.arena,
            remap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RawEvent;
    use crate::reader::XmlReader;
    use crate::writer::XmlWriter;

    /// Recording a document and replaying it through the writer reproduces
    /// the direct serialisation byte for byte.
    #[test]
    fn record_replay_round_trip() {
        let doc =
            r#"<bib><book year="1994" lang="en"><title>T &amp; U</title></book><empty/></bib>"#;
        let direct = {
            let mut reader = XmlReader::new(doc.as_bytes());
            let mut writer = XmlWriter::new(Vec::new());
            let mut ev = RawEvent::new();
            while reader.next_into(&mut ev).unwrap() {
                writer.write_raw_event(reader.symbols(), &ev).unwrap();
            }
            writer.finish().unwrap();
            String::from_utf8(writer.into_inner()).unwrap()
        };

        let mut reader = XmlReader::new(doc.as_bytes());
        let mut tape = EventTape::new();
        while reader.advance().unwrap() {
            tape.push(&reader.view(), reader.event_start(), reader.position());
        }
        let mut writer = XmlWriter::new(Vec::new());
        for i in 0..tape.len() {
            let v = tape.view(i, SymbolRemap::identity());
            writer.write_event_ref(reader.symbols(), &v).unwrap();
        }
        writer.finish().unwrap();
        let replayed = String::from_utf8(writer.into_inner()).unwrap();
        assert_eq!(replayed, direct);
    }

    #[test]
    fn positions_recorded_monotonically() {
        let doc = "<a>\n<b>text</b>\n</a>";
        let mut reader = XmlReader::new(doc.as_bytes());
        let mut tape = EventTape::new();
        while reader.advance().unwrap() {
            tape.push(&reader.view(), reader.event_start(), reader.position());
        }
        for i in 0..tape.len() {
            assert!(
                tape.start_position(i).offset <= tape.position(i).offset,
                "event {i} starts after it ends"
            );
        }
        let offsets: Vec<u64> = (0..tape.len()).map(|i| tape.position(i).offset).collect();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted, "positions must be non-decreasing");
        assert_eq!(
            tape.position(tape.len() - 1).offset,
            doc.len() as u64,
            "end-document recorded at end of input"
        );
    }

    #[test]
    fn remap_translates_past_seed_prefix() {
        let mut seed = SymbolTable::new();
        let book = seed.intern("book");
        let seed_len = seed.len();
        // A local interner that learned one extra name.
        let mut local = seed.clone();
        let local_extra = local.intern("pamphlet");
        // The merged table learned other names first, so indices differ.
        let mut merged = seed.clone();
        merged.intern("zebra");
        let merged_extra = merged.intern("pamphlet");
        assert_ne!(local_extra, merged_extra);

        let remap_table = vec![merged_extra];
        let remap = SymbolRemap::new(seed_len, &remap_table);
        assert_eq!(remap.resolve(book), book, "seed symbols pass through");
        assert_eq!(remap.resolve(local_extra), merged_extra);
        assert_eq!(
            remap.resolve(SymbolTable::OVERFLOW),
            SymbolTable::OVERFLOW,
            "the sentinel is never remapped"
        );
    }
}
