//! Deterministic finite automata over child-element sequences, plus the
//! product-construction analyses from which all schema constraints derive.

use crate::glushkov::Glushkov;
use crate::symbol::Symbol;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index of a DFA state. The start state is always `0`.
pub type StateId = u32;

#[derive(Debug, Clone)]
pub struct DfaState {
    /// Outgoing transitions, sorted by symbol for binary search.
    transitions: Vec<(Symbol, StateId)>,
    accepting: bool,
}

/// A DFA recognising the permitted child sequences of one element type.
#[derive(Debug, Clone)]
pub struct Dfa {
    states: Vec<DfaState>,
    /// `co_accessible[q]`: an accepting state is reachable from `q`
    /// (including `q` itself).
    co_accessible: Vec<bool>,
    /// `still_possible[q]`: symbols that can still occur on some path from
    /// `q` to an accepting state.
    still_possible: Vec<BTreeSet<Symbol>>,
    /// All symbols on any transition.
    alphabet: BTreeSet<Symbol>,
}

impl Dfa {
    /// Builds a DFA from a Glushkov decomposition via subset construction.
    pub fn from_glushkov(g: &Glushkov) -> Dfa {
        // NFA states: 0 = start, p + 1 = position p.
        let mut subset_ids: BTreeMap<BTreeSet<usize>, StateId> = BTreeMap::new();
        let mut states: Vec<DfaState> = Vec::new();
        let mut queue: VecDeque<BTreeSet<usize>> = VecDeque::new();

        let is_accepting = |set: &BTreeSet<usize>| -> bool {
            set.iter().any(|&s| {
                if s == 0 {
                    g.nullable
                } else {
                    g.last.contains(&(s - 1))
                }
            })
        };

        let start_set = BTreeSet::from([0usize]);
        subset_ids.insert(start_set.clone(), 0);
        states.push(DfaState {
            transitions: Vec::new(),
            accepting: is_accepting(&start_set),
        });
        queue.push_back(start_set);

        while let Some(set) = queue.pop_front() {
            let id = subset_ids[&set];
            // Successors grouped by symbol.
            let mut by_symbol: BTreeMap<Symbol, BTreeSet<usize>> = BTreeMap::new();
            for &nfa_state in &set {
                let succ_positions: Box<dyn Iterator<Item = usize>> = if nfa_state == 0 {
                    Box::new(g.first.iter().copied())
                } else {
                    Box::new(g.follow[nfa_state - 1].iter().copied())
                };
                for p in succ_positions {
                    by_symbol
                        .entry(g.position_symbols[p])
                        .or_default()
                        .insert(p + 1);
                }
            }
            let mut transitions = Vec::with_capacity(by_symbol.len());
            for (sym, target_set) in by_symbol {
                let next_id = match subset_ids.get(&target_set) {
                    Some(&existing) => existing,
                    None => {
                        let new_id = StateId::try_from(states.len()).expect("DFA too large");
                        subset_ids.insert(target_set.clone(), new_id);
                        states.push(DfaState {
                            transitions: Vec::new(),
                            accepting: is_accepting(&target_set),
                        });
                        queue.push_back(target_set);
                        new_id
                    }
                };
                transitions.push((sym, next_id));
            }
            states[id as usize].transitions = transitions;
        }

        let mut dfa = Dfa {
            states,
            co_accessible: Vec::new(),
            still_possible: Vec::new(),
            alphabet: BTreeSet::new(),
        };
        dfa.finalise();
        dfa
    }

    fn finalise(&mut self) {
        let n = self.states.len();
        for st in &self.states {
            for &(sym, _) in &st.transitions {
                self.alphabet.insert(sym);
            }
        }
        // co_accessible: backwards reachability from accepting states.
        let mut co = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for q in 0..n {
                if co[q] {
                    continue;
                }
                let reaches = self.states[q].accepting
                    || self.states[q]
                        .transitions
                        .iter()
                        .any(|&(_, t)| co[t as usize]);
                if reaches {
                    co[q] = true;
                    changed = true;
                }
            }
        }
        self.co_accessible = co;
        // still_possible: fixpoint over edges into co-accessible states.
        let mut sp: Vec<BTreeSet<Symbol>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for q in 0..n {
                let mut add: Vec<Symbol> = Vec::new();
                for &(sym, t) in &self.states[q].transitions {
                    if self.co_accessible[t as usize] {
                        if !sp[q].contains(&sym) {
                            add.push(sym);
                        }
                        for &s in &sp[t as usize] {
                            if !sp[q].contains(&s) {
                                add.push(s);
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    sp[q].extend(add);
                    changed = true;
                }
            }
        }
        self.still_possible = sp;
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        0
    }

    /// Follows the transition labelled `sym` from `state`.
    pub fn transition(&self, state: StateId, sym: Symbol) -> Option<StateId> {
        let st = &self.states[state as usize];
        st.transitions
            .binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| st.transitions[i].1)
    }

    /// Whether `state` accepts (the child sequence may end here).
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.states[state as usize].accepting
    }

    /// Whether an accepting state is reachable from `state`.
    pub fn is_co_accessible(&self, state: StateId) -> bool {
        self.co_accessible[state as usize]
    }

    /// Symbols that can still occur on some continuation from `state` that
    /// reaches an accepting state. Empty at states where the element can
    /// only close.
    pub fn still_possible(&self, state: StateId) -> &BTreeSet<Symbol> {
        &self.still_possible[state as usize]
    }

    /// All symbols used by this automaton.
    pub fn alphabet(&self) -> &BTreeSet<Symbol> {
        &self.alphabet
    }

    /// Outgoing transitions of `state`.
    pub fn transitions(&self, state: StateId) -> &[(Symbol, StateId)] {
        &self.states[state as usize].transitions
    }

    /// Core product construction: does some *accepted* word take an edge
    /// labelled `x` at some position and an edge labelled `y` at a strictly
    /// later position? (`x == y` asks for two occurrences of the symbol.)
    pub fn exists_order(&self, x: Symbol, y: Symbol) -> bool {
        // Phases: 0 = nothing committed, 1 = committed an x, 2 = committed
        // an x then later a y. The "skip" choice (not committing an
        // occurrence) is encoded by also staying in the current phase.
        let n = self.states.len();
        let mut visited = vec![[false; 3]; n];
        let mut queue: VecDeque<(StateId, u8)> = VecDeque::new();
        visited[0][0] = true;
        queue.push_back((0, 0));
        while let Some((q, phase)) = queue.pop_front() {
            if phase == 2 && self.co_accessible[q as usize] {
                return true;
            }
            for &(sym, t) in &self.states[q as usize].transitions {
                let push =
                    |ph: u8, visited: &mut Vec<[bool; 3]>, queue: &mut VecDeque<(StateId, u8)>| {
                        if !visited[t as usize][ph as usize] {
                            visited[t as usize][ph as usize] = true;
                            queue.push_back((t, ph));
                        }
                    };
                push(phase, &mut visited, &mut queue);
                if phase == 0 && sym == x {
                    push(1, &mut visited, &mut queue);
                }
                if phase == 1 && sym == y {
                    push(2, &mut visited, &mut queue);
                }
            }
        }
        false
    }

    /// Cardinality constraint `a ∈ ||≤1`: every accepted word contains at
    /// most one `a`.
    pub fn at_most_one(&self, a: Symbol) -> bool {
        !self.exists_order(a, a)
    }

    /// Every accepted word contains at least one `a`.
    pub fn at_least_one(&self, a: Symbol) -> bool {
        // Can we accept while avoiding `a` entirely?
        let n = self.states.len();
        let mut visited = vec![false; n];
        let mut queue = VecDeque::from([0 as StateId]);
        visited[0] = true;
        while let Some(q) = queue.pop_front() {
            if self.states[q as usize].accepting {
                return false;
            }
            for &(sym, t) in &self.states[q as usize].transitions {
                if sym != a && !visited[t as usize] {
                    visited[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        true
    }

    /// Every accepted word contains exactly one `a`.
    pub fn exactly_one(&self, a: Symbol) -> bool {
        self.at_most_one(a) && self.at_least_one(a)
    }

    /// No accepted word contains `a`.
    pub fn never_occurs(&self, a: Symbol) -> bool {
        !self.still_possible[0].contains(&a)
    }

    /// Order constraint: in every accepted word, every `a` occurs before
    /// every `b`. For `a == b` this degenerates to [`Dfa::at_most_one`].
    pub fn all_before(&self, a: Symbol, b: Symbol) -> bool {
        !self.exists_order(b, a)
    }

    /// Language constraint: no accepted word contains both `a` and `b`
    /// (the paper's author/editor example). Requires `a != b`.
    pub fn never_together(&self, a: Symbol, b: Symbol) -> bool {
        debug_assert_ne!(a, b, "never_together is about distinct labels");
        !self.exists_order(a, b) && !self.exists_order(b, a)
    }

    /// Runs the DFA over a word; `None` if rejected mid-way.
    pub fn run(&self, word: impl IntoIterator<Item = Symbol>) -> Option<StateId> {
        let mut state = self.start();
        for sym in word {
            state = self.transition(state, sym)?;
        }
        Some(state)
    }

    /// Convenience: whether the word is in the language.
    pub fn accepts(&self, word: impl IntoIterator<Item = Symbol>) -> bool {
        self.run(word).is_some_and(|q| self.is_accepting(q))
    }
}

/// Checks the XML 1-unambiguity ("deterministic content model") condition on
/// a Glushkov decomposition: no two positions with the same symbol compete
/// in `first` or in any `follow` set.
pub fn is_one_unambiguous(g: &Glushkov) -> bool {
    fn unambiguous(set: &BTreeSet<usize>, g: &Glushkov) -> bool {
        let mut seen = BTreeSet::new();
        for &p in set {
            if !seen.insert(g.position_symbols[p]) {
                return false;
            }
        }
        true
    }
    if !unambiguous(&g.first, g) {
        return false;
    }
    g.follow.iter().all(|f| unambiguous(f, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content_model::Particle;
    use crate::glushkov::glushkov;
    use crate::symbol::SymbolTable;

    struct Fixture {
        table: SymbolTable,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                table: SymbolTable::new(),
            }
        }
        fn sym(&mut self, s: &str) -> Symbol {
            self.table.intern(s)
        }
        fn dfa(&self, p: &Particle) -> Dfa {
            Dfa::from_glushkov(&glushkov(p))
        }
    }

    fn name(s: Symbol) -> Particle {
        Particle::Name(s)
    }

    #[test]
    fn accepts_fig1_words() {
        let mut fx = Fixture::new();
        let (t, a, e, pb, pr) = (
            fx.sym("title"),
            fx.sym("author"),
            fx.sym("editor"),
            fx.sym("publisher"),
            fx.sym("price"),
        );
        // (title, (author+ | editor+), publisher, price)
        let dfa = fx.dfa(&Particle::Seq(vec![
            name(t),
            Particle::Choice(vec![
                Particle::Plus(Box::new(name(a))),
                Particle::Plus(Box::new(name(e))),
            ]),
            name(pb),
            name(pr),
        ]));
        assert!(dfa.accepts([t, a, pb, pr]));
        assert!(dfa.accepts([t, a, a, a, pb, pr]));
        assert!(dfa.accepts([t, e, e, pb, pr]));
        assert!(
            !dfa.accepts([t, a, e, pb, pr]),
            "authors and editors exclude each other"
        );
        assert!(!dfa.accepts([a, t, pb, pr]), "title must come first");
        assert!(
            !dfa.accepts([t, pb, pr]),
            "need at least one author or editor"
        );
        assert!(!dfa.accepts([t, a, pb]), "price is mandatory");
    }

    #[test]
    fn constraints_on_fig1() {
        let mut fx = Fixture::new();
        let (t, a, e, pb, pr) = (
            fx.sym("title"),
            fx.sym("author"),
            fx.sym("editor"),
            fx.sym("publisher"),
            fx.sym("price"),
        );
        let dfa = fx.dfa(&Particle::Seq(vec![
            name(t),
            Particle::Choice(vec![
                Particle::Plus(Box::new(name(a))),
                Particle::Plus(Box::new(name(e))),
            ]),
            name(pb),
            name(pr),
        ]));
        // Cardinality constraints (paper: publisher ∈ ||≤1 book).
        assert!(dfa.at_most_one(pb));
        assert!(dfa.at_most_one(t));
        assert!(dfa.at_most_one(pr));
        assert!(!dfa.at_most_one(a));
        assert!(!dfa.at_most_one(e));
        assert!(dfa.exactly_one(t));
        assert!(dfa.at_least_one(pb));
        assert!(!dfa.at_least_one(a), "editor-only books have no authors");
        // Order constraints (paper: titles precede authors).
        assert!(dfa.all_before(t, a));
        assert!(dfa.all_before(t, e));
        assert!(dfa.all_before(a, pb));
        assert!(dfa.all_before(a, pr));
        assert!(!dfa.all_before(a, t));
        // Language constraint (paper: no book has both author and editor).
        assert!(dfa.never_together(a, e));
        assert!(!dfa.never_together(t, a));
    }

    #[test]
    fn weak_dtd_has_no_constraints() {
        let mut fx = Fixture::new();
        let (t, a) = (fx.sym("title"), fx.sym("author"));
        // (title | author)*
        let dfa = fx.dfa(&Particle::Star(Box::new(Particle::Choice(vec![
            name(t),
            name(a),
        ]))));
        assert!(dfa.accepts([]));
        assert!(dfa.accepts([a, t, a, t]));
        assert!(!dfa.at_most_one(t));
        assert!(!dfa.all_before(t, a));
        assert!(!dfa.all_before(a, t));
        assert!(!dfa.never_together(t, a));
        assert!(!dfa.at_least_one(t));
    }

    #[test]
    fn still_possible_tracks_progress() {
        let mut fx = Fixture::new();
        let (t, a, pb) = (fx.sym("title"), fx.sym("author"), fx.sym("publisher"));
        // (title, author*, publisher)
        let dfa = fx.dfa(&Particle::Seq(vec![
            name(t),
            Particle::Star(Box::new(name(a))),
            name(pb),
        ]));
        let q0 = dfa.start();
        assert_eq!(dfa.still_possible(q0), &BTreeSet::from([t, a, pb]));
        let q1 = dfa.transition(q0, t).unwrap();
        assert_eq!(
            dfa.still_possible(q1),
            &BTreeSet::from([a, pb]),
            "title is past"
        );
        let q2 = dfa.transition(q1, a).unwrap();
        assert_eq!(dfa.still_possible(q2), &BTreeSet::from([a, pb]));
        let q3 = dfa.transition(q2, pb).unwrap();
        assert!(dfa.still_possible(q3).is_empty(), "everything is past");
        assert!(dfa.is_accepting(q3));
    }

    #[test]
    fn never_occurs_detects_unreachable_labels() {
        let mut fx = Fixture::new();
        let (a, b) = (fx.sym("a"), fx.sym("b"));
        let dfa = fx.dfa(&name(a));
        assert!(dfa.never_occurs(b));
        assert!(!dfa.never_occurs(a));
    }

    #[test]
    fn empty_content() {
        let fx = Fixture::new();
        let dfa = fx.dfa(&Particle::Epsilon);
        assert!(dfa.accepts([]));
        assert_eq!(dfa.state_count(), 1);
        assert!(dfa.still_possible(0).is_empty());
    }

    #[test]
    fn exists_order_same_symbol() {
        let mut fx = Fixture::new();
        let a = fx.sym("a");
        let one = fx.dfa(&name(a));
        assert!(!one.exists_order(a, a));
        let many = fx.dfa(&Particle::Star(Box::new(name(a))));
        assert!(many.exists_order(a, a));
        // Exactly two a's also counts.
        let two = fx.dfa(&Particle::Seq(vec![name(a), name(a)]));
        assert!(two.exists_order(a, a));
    }

    #[test]
    fn order_constraint_respects_unreachable_suffix() {
        let mut fx = Fixture::new();
        let (a, b, c) = (fx.sym("a"), fx.sym("b"), fx.sym("c"));
        // (a, b) | (b, c): there IS a word where b precedes... nothing of a.
        // all_before(a, b) fails only if b can precede a in an ACCEPTED word.
        let dfa = fx.dfa(&Particle::Choice(vec![
            Particle::Seq(vec![name(a), name(b)]),
            Particle::Seq(vec![name(b), name(c)]),
        ]));
        assert!(dfa.all_before(a, b), "no accepted word has b before a");
        assert!(!dfa.all_before(b, a), "(a, b) violates it");
        assert!(dfa.never_together(a, c));
    }

    #[test]
    fn one_unambiguous_check() {
        let mut fx = Fixture::new();
        let (a, b) = (fx.sym("a"), fx.sym("b"));
        let ok = glushkov(&Particle::Seq(vec![name(a), name(b)]));
        assert!(is_one_unambiguous(&ok));
        // (a, b) | (a, c) is the classic ambiguous model.
        let c = fx.sym("c");
        let ambiguous = glushkov(&Particle::Choice(vec![
            Particle::Seq(vec![name(a), name(b)]),
            Particle::Seq(vec![name(a), name(c)]),
        ]));
        assert!(!is_one_unambiguous(&ambiguous));
    }

    #[test]
    fn subset_construction_handles_ambiguity() {
        let mut fx = Fixture::new();
        let (a, b, c) = (fx.sym("a"), fx.sym("b"), fx.sym("c"));
        // Ambiguous model still yields a correct DFA.
        let dfa = fx.dfa(&Particle::Choice(vec![
            Particle::Seq(vec![name(a), name(b)]),
            Particle::Seq(vec![name(a), name(c)]),
        ]));
        assert!(dfa.accepts([a, b]));
        assert!(dfa.accepts([a, c]));
        assert!(!dfa.accepts([a]));
        assert!(!dfa.accepts([b]));
    }

    #[test]
    fn run_reports_rejection() {
        let mut fx = Fixture::new();
        let (a, b) = (fx.sym("a"), fx.sym("b"));
        let dfa = fx.dfa(&name(a));
        assert!(dfa.run([b]).is_none());
        assert!(dfa.run([a]).is_some());
    }
}
