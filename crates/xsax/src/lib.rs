//! # flux-xsax
//!
//! The **XSAX** validating SAX parser of the paper (Sec. 3.2): an extension
//! of a standard SAX parser that validates the stream against a DTD and, in
//! addition to the customary events, produces **`on-first` events**.
//!
//! A consumer registers *past queries* — pairs of an element type `E` and a
//! label set `L` — before streaming starts. While an `E` element is open,
//! XSAX runs `E`'s content-model DFA over the child labels; the registered
//! query fires **exactly once per `E` instance**, at the earliest point in
//! the stream where the DTD implies that no further child with a label in
//! `L` can be encountered. At that point, any buffers holding `$e/l` paths
//! (`l ∈ L`) are guaranteed complete, which is what makes FluX `on-first
//! past(L)` handlers safe to execute.
//!
//! Event ordering contract (what the FluXQuery evaluator relies on):
//!
//! * a fired [`XsaxEvent::OnFirstPast`] is delivered **before** the
//!   `StartElement` of the child whose arrival triggered it, or **after**
//!   the `EndElement` of the child that completed the last possible `L`
//!   match, or **before** the `EndElement` of the `E` instance itself —
//!   always at the exact seam between siblings where the guarantee starts
//!   to hold;
//! * multiple registrations firing at the same seam are delivered in
//!   registration order.

pub mod error;
pub mod event;
pub mod parser;

pub use error::{Result, XsaxError};
pub use event::{PastId, PastLabels, XsaxEvent, XsaxStep};
pub use parser::{seeded_symbols, validate, XsaxConfig, XsaxParser};
