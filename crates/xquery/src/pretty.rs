//! Pretty printer for XQuery expressions.
//!
//! The output re-parses to the same AST (modulo `Expr::seq` flattening),
//! which the round-trip tests rely on.

use crate::ast::*;
use std::fmt::Write;

/// Renders an expression as query text.
pub fn pretty(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(expr, 0, &mut out);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_string_lit(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        if ch == '"' {
            out.push_str("\"\"");
        } else {
            out.push(ch);
        }
    }
    out.push('"');
}

fn write_expr(expr: &Expr, level: usize, out: &mut String) {
    match expr {
        Expr::Empty => out.push_str("()"),
        Expr::StringLit(s) => write_string_lit(s, out),
        Expr::Var(v) => {
            let _ = write!(out, "${v}");
        }
        Expr::Path(p) => {
            let _ = write!(out, "{p}");
        }
        Expr::Sequence(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(item, level, out);
            }
            out.push(')');
        }
        Expr::Element {
            name,
            attributes,
            content,
        } => {
            let _ = write!(out, "<{name}");
            for attr in attributes {
                let _ = write!(out, " {}=\"", attr.name);
                for part in &attr.value {
                    match part {
                        AttrPart::Literal(text) => {
                            for ch in text.chars() {
                                match ch {
                                    '"' => out.push_str("&quot;"),
                                    '&' => out.push_str("&amp;"),
                                    '<' => out.push_str("&lt;"),
                                    '{' => out.push_str("{{"),
                                    _ => out.push(ch),
                                }
                            }
                        }
                        AttrPart::Expr(e) => {
                            out.push('{');
                            write_expr(e, level, out);
                            out.push('}');
                        }
                    }
                }
                out.push('"');
            }
            match &**content {
                Expr::Empty => out.push_str("/>"),
                content => {
                    out.push('>');
                    write_content(content, level + 1, out);
                    let _ = write!(out, "</{name}>");
                }
            }
        }
        Expr::For {
            var,
            source,
            where_clause,
            body,
        } => {
            let _ = write!(out, "for ${var} in {source}");
            if let Some(cond) = where_clause {
                out.push_str(" where ");
                write_cond(cond, out);
            }
            out.push_str(" return ");
            write_wrapped(body, level, out);
        }
        Expr::Let { var, value, body } => {
            let _ = write!(out, "let ${var} := ");
            write_wrapped(value, level, out);
            out.push_str(" return ");
            write_wrapped(body, level, out);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("if (");
            write_cond(cond, out);
            out.push_str(") then ");
            write_wrapped(then_branch, level, out);
            out.push_str(" else ");
            write_wrapped(else_branch, level, out);
        }
    }
}

/// Writes sub-expressions that require parentheses when they are sequences.
fn write_wrapped(expr: &Expr, level: usize, out: &mut String) {
    match expr {
        Expr::Sequence(_) => write_expr(expr, level, out),
        _ => write_expr(expr, level, out),
    }
}

/// Writes constructor content: constructors inline, everything else enclosed.
fn write_content(content: &Expr, level: usize, out: &mut String) {
    let items: &[Expr] = match content {
        Expr::Sequence(items) => items,
        single => std::slice::from_ref(single),
    };
    for item in items {
        match item {
            Expr::Element { .. } => {
                out.push('\n');
                indent(out, level);
                write_expr(item, level, out);
            }
            _ => {
                out.push('\n');
                indent(out, level);
                out.push_str("{ ");
                write_expr(item, level, out);
                out.push_str(" }");
            }
        }
    }
    out.push('\n');
    indent(out, level.saturating_sub(1));
}

fn write_operand(op: &Operand, out: &mut String) {
    match op {
        Operand::Path(p) => {
            let _ = write!(out, "{p}");
        }
        Operand::StringLit(s) => write_string_lit(s, out),
        Operand::NumberLit(n) => out.push_str(n),
    }
}

/// Renders a condition.
pub fn write_cond(cond: &Cond, out: &mut String) {
    match cond {
        Cond::Cmp { lhs, op, rhs } => {
            write_operand(lhs, out);
            let _ = write!(out, " {} ", op.as_str());
            write_operand(rhs, out);
        }
        Cond::And(a, b) => {
            write_cond_nested(a, out);
            out.push_str(" and ");
            write_cond_nested(b, out);
        }
        Cond::Or(a, b) => {
            write_cond_nested(a, out);
            out.push_str(" or ");
            write_cond_nested(b, out);
        }
        Cond::Not(c) => {
            out.push_str("not(");
            write_cond(c, out);
            out.push(')');
        }
        Cond::Exists(p) => {
            let _ = write!(out, "exists({p})");
        }
        Cond::Empty(p) => {
            let _ = write!(out, "empty({p})");
        }
        Cond::True => out.push_str("true()"),
        Cond::False => out.push_str("false()"),
    }
}

fn write_cond_nested(cond: &Cond, out: &mut String) {
    match cond {
        Cond::And(..) | Cond::Or(..) => {
            out.push('(');
            write_cond(cond, out);
            out.push(')');
        }
        _ => write_cond(cond, out),
    }
}

/// Renders a condition to a string.
pub fn pretty_cond(cond: &Cond) -> String {
    let mut out = String::new();
    write_cond(cond, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(q: &str) {
        let ast1 = parse_query(q).unwrap_or_else(|e| panic!("parse 1 failed for {q}: {e}"));
        let printed = pretty(&ast1);
        let ast2 =
            parse_query(&printed).unwrap_or_else(|e| panic!("parse 2 failed for:\n{printed}\n{e}"));
        assert_eq!(ast1, ast2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trip_q3() {
        round_trip(
            r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#,
        );
    }

    #[test]
    fn round_trip_join() {
        round_trip(
            r#"<pairs>{ for $a in $ROOT/r/x, $b in $ROOT/r/y where $a/k = $b/k return <pair>{$a}{$b}</pair> }</pairs>"#,
        );
    }

    #[test]
    fn round_trip_conditionals() {
        round_trip(
            r#"<out>{ for $b in $ROOT/bib/book return if ($b/author = "Goedel" and not(empty($b/title))) then $b/title else () }</out>"#,
        );
    }

    #[test]
    fn round_trip_attributes() {
        round_trip(r#"<book year="{$b/@year}" fixed="v"><t>body text</t></book>"#);
    }

    #[test]
    fn round_trip_let() {
        round_trip(r#"let $t := $ROOT/bib/book return <r>{$t}</r>"#);
    }

    #[test]
    fn round_trip_nested_ifs() {
        round_trip(
            r#"if ($x/a < 10 or $x/b >= 2.5) then <y/> else if (exists($x/c)) then <z/> else ()"#,
        );
    }

    #[test]
    fn round_trip_strings_with_quotes() {
        round_trip(r#"<r>{ "say ""hi"" & <ok>" }</r>"#);
    }

    #[test]
    fn round_trip_text_steps() {
        round_trip(r#"<r>{$b/title/text()}{$b/@year}</r>"#);
    }

    #[test]
    fn cond_pretty() {
        let c = Cond::And(
            Box::new(Cond::Exists(Path::var("b").child("a"))),
            Box::new(Cond::Or(Box::new(Cond::True), Box::new(Cond::False))),
        );
        assert_eq!(pretty_cond(&c), "exists($b/a) and (true() or false())");
    }
}
