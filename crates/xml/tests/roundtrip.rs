//! Property tests: serialise → parse is the identity on event streams, for
//! arbitrary trees and arbitrary text/attribute content.

use flux_xml::{
    escape, events_to_string, parse_to_events, Attribute, RawEvent, XmlEvent, XmlReader, XmlWriter,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NAMES: &[&str] = &["a", "b", "item", "x-y", "ns:tag", "_u"];

/// Characters that exercise escaping, multi-byte UTF-8 and whitespace.
const TEXT_POOL: &[&str] = &[
    "plain",
    "a<b",
    "x>y",
    "amp&",
    "quote\"",
    "apostrophe'",
    "grüße",
    "💡",
    "  spaced  ",
    "line\nbreak",
    "tab\t",
    "]]>",
    "--",
    "{brace}",
];

/// Generates a random balanced event sequence (one root element).
fn random_events(seed: u64) -> Vec<XmlEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut events = vec![XmlEvent::StartDocument];
    fn element(rng: &mut SmallRng, events: &mut Vec<XmlEvent>, depth: usize, budget: &mut i32) {
        let name = NAMES[rng.gen_range(0..NAMES.len())].to_string();
        let attrs = (0..rng.gen_range(0..3))
            .map(|i| {
                Attribute::new(
                    format!("k{i}"),
                    TEXT_POOL[rng.gen_range(0..TEXT_POOL.len())].to_string(),
                )
            })
            .collect();
        events.push(XmlEvent::StartElement {
            name: name.clone(),
            attributes: attrs,
        });
        let children = if depth == 0 || *budget <= 0 {
            0
        } else {
            rng.gen_range(0..4)
        };
        let mut last_was_text = false;
        for _ in 0..children {
            *budget -= 1;
            if !last_was_text && rng.gen_bool(0.4) {
                // Text child (the reader merges adjacent text, so never
                // emit two in a row).
                let t = TEXT_POOL[rng.gen_range(0..TEXT_POOL.len())].to_string();
                events.push(XmlEvent::Text(t));
                last_was_text = true;
            } else {
                element(rng, events, depth - 1, budget);
                last_was_text = false;
            }
        }
        events.push(XmlEvent::EndElement { name });
    }
    let mut budget = 30;
    element(&mut rng, &mut events, 4, &mut budget);
    events.push(XmlEvent::EndDocument);
    events
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn serialize_parse_round_trip(seed in 0u64..1_000_000) {
        let events = random_events(seed);
        let text = events_to_string(&events).expect("serialise");
        let reparsed = parse_to_events(&text)
            .unwrap_or_else(|e| panic!("reparse failed for:\n{text}\n{e}"));
        prop_assert_eq!(&events, &reparsed, "round trip changed events for:\n{}", text);
    }

    #[test]
    fn escape_unescape_identity(s in "\\PC*") {
        let escaped = escape::escape_text(&s);
        let back = escape::unescape(&escaped, flux_xml::Position::default()).expect("unescape");
        prop_assert_eq!(&back, &s);
        // Escaped text never contains raw markup-significant characters
        // outside entity references.
        prop_assert!(!escaped.contains('<'));
    }

    #[test]
    fn attr_escape_round_trip(s in "\\PC*") {
        let escaped = escape::escape_attr(&s);
        prop_assert!(!escaped.contains('"'));
        prop_assert!(!escaped.contains('<'));
        let back = escape::unescape(&escaped, flux_xml::Position::default()).expect("unescape");
        prop_assert_eq!(&back, &s);
    }

    /// The interned reader → writer pipeline is byte-identical to the
    /// string-based one on generated documents (names, attributes, text
    /// with entities — and CDATA via `kitchen_sink_raw_path` below).
    #[test]
    fn raw_path_matches_string_path(seed in 0u64..1_000_000) {
        let events = random_events(seed);
        let text = events_to_string(&events).expect("serialise");
        let via_strings = pipe_through_strings(&text);
        let via_symbols = pipe_through_symbols(&text);
        prop_assert_eq!(
            &via_strings, &via_symbols,
            "interned pipeline diverged for:\n{}", text
        );
    }

    /// Parsing is a fixpoint: parse(serialise(parse(x))) == parse(x).
    #[test]
    fn parse_serialise_fixpoint(seed in 0u64..1_000_000) {
        let events = random_events(seed);
        let text1 = events_to_string(&events).expect("serialise 1");
        let events2 = parse_to_events(&text1).expect("parse 1");
        let text2 = events_to_string(&events2).expect("serialise 2");
        prop_assert_eq!(text1, text2);
    }
}

/// Reads `text` with the owned-`XmlEvent` API and re-serialises it.
#[allow(deprecated)] // exercises the legacy string-event path on purpose
fn pipe_through_strings(text: &str) -> String {
    let mut reader = XmlReader::new(text.as_bytes());
    let mut writer = XmlWriter::new(Vec::new());
    loop {
        let ev = reader.next_event().expect("string-path parse");
        let done = ev == XmlEvent::EndDocument;
        writer.write_event(&ev).expect("string-path write");
        if done {
            break;
        }
    }
    writer.finish().expect("string-path finish");
    String::from_utf8(writer.into_inner()).expect("utf8 output")
}

/// Reads `text` with the recycled interned-event API and re-serialises it,
/// mapping symbols back through the reader's table.
fn pipe_through_symbols(text: &str) -> String {
    let mut reader = XmlReader::new(text.as_bytes());
    let mut writer = XmlWriter::new(Vec::new());
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).expect("raw-path parse") {
        writer
            .write_raw_event(reader.symbols(), &ev)
            .expect("raw-path write");
    }
    writer.finish().expect("raw-path finish");
    String::from_utf8(writer.into_inner()).expect("utf8 output")
}

/// The raw path agrees byte-for-byte on a document with every syntactic
/// feature: doctype, comments, CDATA, entities, attributes in both quote
/// styles, multi-byte UTF-8.
#[test]
fn kitchen_sink_raw_path() {
    let doc = "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]>\
               <r a=\"1\" b='two &amp; three'><!-- comment -->text &lt;here&gt; grüße 💡\
               <child/><![CDATA[raw <stuff> &amp;]]><deep><deeper>x</deeper></deep></r>";
    assert_eq!(pipe_through_strings(doc), pipe_through_symbols(doc));
}

/// Documents with every syntactic feature survive a tree round trip.
#[test]
fn kitchen_sink_document() {
    let doc = "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]>\
               <r a=\"1\" b=\"two &amp; three\"><!-- comment -->text &lt;here&gt;\
               <child/><![CDATA[raw <stuff> &amp;]]><deep><deeper>x</deeper></deep></r>";
    let events = parse_to_events(doc).expect("parse");
    let text = events_to_string(&events).expect("serialise");
    let reparsed = parse_to_events(&text).expect("reparse");
    // Doctype is consumed by the serializer; drop it from the original too.
    let filtered: Vec<_> = events
        .into_iter()
        .filter(|e| !matches!(e, XmlEvent::DoctypeDecl { .. }))
        .collect();
    assert_eq!(filtered, reparsed);
}
