//! The projection baseline, in the style of Marian & Siméon ("Projecting
//! XML Documents", VLDB 2003) — reference \[10\] of the paper.
//!
//! The engine statically derives the query's projection paths, streams the
//! input keeping only nodes on those paths (with their required subtrees),
//! and evaluates the query over the projected document. Peak memory is the
//! projected document size: smaller than full DOM, but still growing
//! linearly with document size — the paper's Sec. 2 contrasts FluX with
//! exactly this architecture ("all title and all author nodes of each
//! book").

use crate::error::Result;
use flux_runtime::bdf::{collect_needs, SpecArena, SpecView};
use flux_runtime::RunStats;
use flux_xml::tree::{Document, NodeId};
use flux_xml::{RawEvent, RawEventKind, ReaderConfig, SymbolTable, TextGate, XmlReader, XmlWriter};
use flux_xquery::{
    compile_expr, normalize, parse_query, CompiledExpr, CursorEvaluator, SlotMap, ROOT_VAR,
};
use std::io::{Read, Write};
use std::time::Instant;

/// Compiled projection-baseline query.
pub struct ProjectionEngine {
    compiled: CompiledExpr,
    slots: SlotMap,
    root_slot: usize,
    specs: SpecArena,
    root_spec: flux_runtime::SpecId,
    /// Every projection label, interned at compile time: the spec edges
    /// are keyed by these symbols, and each run seeds its reader and its
    /// projected document from a clone, so descent is integer equality
    /// with no per-run index build.
    symbols: SymbolTable,
}

impl ProjectionEngine {
    /// Derives projection paths from the normalized query, interning every
    /// label into the engine's own symbol table.
    pub fn compile(query: &str) -> Result<Self> {
        let parsed = parse_query(query)?;
        let query = normalize(&parsed)?;
        let mut specs = SpecArena::new();
        let root_spec = specs.new_root();
        let mut symbols = SymbolTable::new();
        collect_needs(
            &mut specs,
            &query,
            &[(ROOT_VAR.to_string(), root_spec)],
            &mut |label| Some(symbols.intern(label)),
        );
        // The evaluator compiles against the same table the spec edges are
        // keyed by: the projected document is seeded from it, so path steps
        // match by the very integers that admitted the nodes.
        let mut slots = SlotMap::new();
        let root_slot = slots.slot(ROOT_VAR);
        let compiled = compile_expr(&query, &mut slots, &mut |label| Some(symbols.intern(label)))?;
        Ok(ProjectionEngine {
            compiled,
            slots,
            root_slot,
            specs,
            root_spec,
            symbols,
        })
    }

    /// A rendering of the derived projection paths (for explain output).
    pub fn projection_paths(&self) -> String {
        self.specs.render(self.root_spec)
    }

    /// Streams the input, materialising only projected nodes, then
    /// evaluates over the projected document.
    pub fn run<R: Read, W: Write>(&self, input: R, output: W) -> Result<RunStats> {
        self.run_with_config(input, output, ReaderConfig::default())
    }

    /// Runs over a unified [`Input`](flux_xml::Input): resolves the source
    /// (path, gzip, stream or buffer), threads its window and budget into
    /// the reader, and enforces the budget post-run. The base `config`
    /// carries knobs the input does not own (e.g. the interner bound).
    pub fn run_input<W: Write>(
        &self,
        input: flux_xml::Input,
        output: W,
        config: ReaderConfig,
    ) -> Result<RunStats> {
        let (reader, config, budget) = crate::resolve_input(input, config)?;
        let stats = self.run_with_config(reader, output, config)?;
        crate::enforce_budget(budget, stats.peak_buffer_bytes)?;
        Ok(stats)
    }

    /// [`ProjectionEngine::run`] with an explicit reader configuration
    /// (e.g. [`ReaderConfig::max_symbols`] for bounded-interner streams).
    ///
    /// The stream runs on the recycled interned-event path: the projection
    /// labels were interned at compile time and the reader is seeded with
    /// them, so descent is symbol equality — with a literal-spelling
    /// fallback for names a bounded interner declined to intern, which
    /// therefore never changes what is projected.
    pub fn run_with_config<R: Read, W: Write>(
        &self,
        input: R,
        output: W,
        config: ReaderConfig,
    ) -> Result<RunStats> {
        let start = Instant::now();
        // Seed the reader with the compile-time label table: any document
        // name matching a label resolves to the symbol the spec edges are
        // keyed by, and the projected document shares the index space.
        let mut reader = XmlReader::with_symbols(input, config, self.symbols.clone());
        let mut doc = Document::with_symbols(self.symbols.clone());
        let mut events: u64 = 0;
        // Stack entry: insertion target when the element is kept.
        let mut stack: Vec<Option<(NodeId, SpecView)>> = vec![Some((
            doc.document_node(),
            SpecView::Project(self.root_spec),
        ))];
        let mut ev = RawEvent::new();
        let mut gate = TextGate::new();
        while reader.next_into(&mut ev)? {
            events += 1;
            match ev.kind() {
                RawEventKind::StartElement => {
                    let child = match stack.last().expect("document entry") {
                        Some((parent, view)) => view
                            .descend_event(&self.specs, ev.name(), ev.name_str(reader.symbols()))
                            .map(|child_view| {
                                let id = doc.create_element_raw(reader.symbols(), &ev);
                                (*parent, id, child_view)
                            }),
                        None => None,
                    };
                    match child {
                        Some((parent, id, view)) => {
                            doc.append_child(parent, id);
                            stack.push(Some((id, view)));
                        }
                        None => stack.push(None),
                    }
                }
                RawEventKind::EndElement => {
                    stack.pop();
                }
                RawEventKind::Text => {
                    if let Some((node, view)) = stack.last().expect("inside document") {
                        if view.keeps_text(&self.specs) {
                            // Projected text is exactly the repetitive kind
                            // (every author of every book): route it through
                            // the shared dictionary.
                            let id = doc.gated_text(&mut gate, ev.text());
                            doc.append_child(*node, id);
                        }
                    }
                }
                _ => {}
            }
        }
        let peak = doc.memory_bytes();
        let nodes = doc.node_count();

        let mut writer = XmlWriter::new(output);
        let mut evaluator = CursorEvaluator::new();
        let mut slots = self.slots.make_slots();
        slots[self.root_slot] = Some(doc.document_node());
        evaluator.eval(&doc, &self.compiled, &mut slots, &mut writer)?;
        writer.finish()?;

        Ok(RunStats {
            peak_buffer_bytes: peak,
            peak_buffer_nodes: nodes,
            total_buffered_bytes: peak as u64,
            output_bytes: writer.bytes_written(),
            events,
            duration: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomEngine;

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    fn doc_with_publishers(n: usize) -> String {
        let mut s = String::from("<bib>");
        for i in 0..n {
            s.push_str(&format!(
                "<book><title>T{i}</title><author>A{i}</author><publisher>{}</publisher></book>",
                "P".repeat(1000)
            ));
        }
        s.push_str("</bib>");
        s
    }

    #[test]
    fn same_answers_as_dom() {
        let doc = doc_with_publishers(5);
        let projection = ProjectionEngine::compile(Q3).unwrap();
        let dom = DomEngine::compile(Q3).unwrap();
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        projection.run(doc.as_bytes(), &mut out1).unwrap();
        dom.run(doc.as_bytes(), &mut out2).unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn projects_away_unused_branches() {
        // Q3 never touches publishers: projection memory must be far below
        // DOM memory on publisher-heavy documents.
        let doc = doc_with_publishers(50);
        let projection = ProjectionEngine::compile(Q3).unwrap();
        let dom = DomEngine::compile(Q3).unwrap();
        let mut sink = Vec::new();
        let p = projection.run(doc.as_bytes(), &mut sink).unwrap();
        sink.clear();
        let d = dom.run(doc.as_bytes(), &mut sink).unwrap();
        assert!(
            p.peak_buffer_bytes * 3 < d.peak_buffer_bytes,
            "projection {} must be well below DOM {}",
            p.peak_buffer_bytes,
            d.peak_buffer_bytes
        );
    }

    #[test]
    fn projection_still_scales_with_document() {
        // Unlike FluX, projection keeps ALL titles and authors: memory
        // grows with the number of books.
        let projection = ProjectionEngine::compile(Q3).unwrap();
        let mut sink = Vec::new();
        let small = projection
            .run(doc_with_publishers(5).as_bytes(), &mut sink)
            .unwrap();
        sink.clear();
        let large = projection
            .run(doc_with_publishers(100).as_bytes(), &mut sink)
            .unwrap();
        assert!(
            large.peak_buffer_bytes > small.peak_buffer_bytes * 10,
            "{} vs {}",
            large.peak_buffer_bytes,
            small.peak_buffer_bytes
        );
    }

    #[test]
    fn projection_paths_rendered() {
        let projection = ProjectionEngine::compile(Q3).unwrap();
        let paths = projection.projection_paths();
        assert!(paths.contains("bib"), "{paths}");
        assert!(paths.contains("book"), "{paths}");
    }
}
