//! # flux-xml
//!
//! Streaming XML infrastructure for the FluXQuery engine: a from-scratch
//! pull parser ([`XmlReader`]), a streaming serialiser ([`XmlWriter`]), the
//! shared SAX-style event model ([`XmlEvent`]), entity escaping, and a
//! memory-accounted arena document tree ([`Document`]).
//!
//! The reader never materialises the document; its memory use is bounded by
//! the largest single token plus one interner entry per distinct name —
//! schema-sized on validated streams. That property is load-bearing for the
//! paper's claims: FluXQuery's buffer consumption is determined by the
//! query and the DTD, not by the document size, and the parsing layer must
//! not undermine that.
//!
//! The hot path is the **interned event core**: [`XmlReader::next_into`]
//! rewrites one caller-owned [`RawEvent`] in place, with element and
//! attribute names as [`Symbol`]s from the reader's [`SymbolTable`]
//! (seedable from a schema via [`XmlReader::with_symbols`]) and recycled
//! text/value buffers — zero heap allocations per event in the steady
//! state. The owned [`XmlEvent`] API remains as a convenience wrapper.

pub mod error;
pub mod escape;
pub mod event;
pub mod input;
pub mod reader;
pub mod scan;
mod scanner;
pub mod simd;
pub mod source;
pub mod tape;
pub mod tree;
pub mod writer;

pub use error::{Position, Result, XmlError};
pub use event::{
    AttrRef, Attribute, AttrsIter, RawAttr, RawEvent, RawEventKind, RawEventRef, XmlEvent,
};
pub use flux_symbols::{Symbol, SymbolTable};
pub use input::{
    BudgetCharge, BudgetExceeded, BudgetKind, GzipMode, Input, MemoryBudget, ResolvedInput,
    DEFAULT_WINDOW,
};
pub use reader::{is_name_start, parse_to_events, ReaderConfig, XmlReader};
pub use simd::{active_isa_name, StructuralIndex};
pub use source::EventSource;
pub use tape::{EventTape, SymbolRemap};
pub use tree::{Document, NodeAttr, NodeId, NodeKind, TextGate, TreeBuilder};
pub use writer::{events_to_string, WriterConfig, XmlWriter};
