//! Property-based cross-engine equivalence: on randomly generated
//! documents, the FluXQuery streaming engine, the DOM baseline and the
//! projection baseline must produce byte-identical output for every
//! catalog query — and FluXQuery must also agree with itself when the
//! algebraic optimizer is disabled.

use flux_bench::{catalog, run_engine, Domain};
use fluxquery::EngineKind;
use proptest::prelude::*;

fn domains() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::BibWeak),
        Just(Domain::BibFig1),
        Just(Domain::Auction),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// All four engine configurations agree on every applicable catalog
    /// query for arbitrary seeds and sizes.
    #[test]
    fn engines_agree_on_random_documents(
        seed in 0u64..10_000,
        scale in 1u32..12,
        domain in domains(),
    ) {
        let scale = scale as f64 / 20.0; // 0.05 .. 0.55
        let doc = domain.document(scale, seed);
        for q in catalog().into_iter().filter(|q| q.domain == domain) {
            let mut reference: Option<Vec<u8>> = None;
            for kind in [
                EngineKind::Flux,
                EngineKind::FluxNoAlgebra,
                EngineKind::Projection,
                EngineKind::Dom,
            ] {
                let outcome = run_engine(kind, q.query, domain.dtd(), doc.as_bytes())
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", q.id, kind.label()));
                match &reference {
                    None => reference = Some(outcome.output),
                    Some(expected) => prop_assert_eq!(
                        &outcome.output,
                        expected,
                        "{} disagrees on {} (seed {}, scale {})",
                        kind.label(),
                        q.id,
                        seed,
                        scale
                    ),
                }
            }
        }
    }

    /// The FluX engine's peak buffer never exceeds the DOM engine's (it can
    /// only buffer less than the whole document).
    #[test]
    fn flux_never_buffers_more_than_dom(
        seed in 0u64..10_000,
        scale in 2u32..10,
    ) {
        let scale = scale as f64 / 10.0;
        let doc = Domain::BibWeak.document(scale, seed);
        let q = flux_bench::Q3;
        let flux = run_engine(EngineKind::Flux, q, Domain::BibWeak.dtd(), doc.as_bytes()).unwrap();
        let dom = run_engine(EngineKind::Dom, q, Domain::BibWeak.dtd(), doc.as_bytes()).unwrap();
        prop_assert!(
            flux.stats.peak_buffer_bytes <= dom.stats.peak_buffer_bytes,
            "flux {} > dom {}",
            flux.stats.peak_buffer_bytes,
            dom.stats.peak_buffer_bytes
        );
    }
}
