//! Pretty printer for FluX queries, using the paper's surface syntax:
//!
//! ```text
//! <results>
//!   { process-stream $ROOT: on bib as $bib return
//!     { process-stream $bib: on book as $book return
//!       <result>
//!         { process-stream $book:
//!             on title as $t return {$t};
//!             on-first past(title,author) return
//!               { for $a in $book/author return {$a} } }
//!       </result> } }
//! </results>
//! ```

use crate::ast::{FluxExpr, Handler};
use flux_xquery::{pretty as xquery_pretty, AttrPart};
use std::fmt::Write;

/// Renders a FluX expression in paper-style syntax.
pub fn pretty_flux(expr: &FluxExpr) -> String {
    let mut out = String::new();
    write_expr(expr, 0, &mut out);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_expr(expr: &FluxExpr, level: usize, out: &mut String) {
    match expr {
        FluxExpr::Empty => out.push_str("()"),
        FluxExpr::StringLit(s) => {
            let _ = write!(out, "{s:?}");
        }
        FluxExpr::StreamCopy(var) => {
            let _ = write!(out, "{{${var}}}");
        }
        FluxExpr::Sequence(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                write_expr(item, level, out);
            }
        }
        FluxExpr::Element {
            name,
            attributes,
            content,
        } => {
            let _ = write!(out, "<{name}");
            for attr in attributes {
                let _ = write!(out, " {}=\"", attr.name);
                for part in &attr.value {
                    match part {
                        AttrPart::Literal(t) => out.push_str(t),
                        AttrPart::Expr(e) => {
                            out.push('{');
                            out.push_str(&xquery_pretty(e));
                            out.push('}');
                        }
                    }
                }
                out.push('"');
            }
            match &**content {
                FluxExpr::Empty => out.push_str("/>"),
                content => {
                    out.push_str(">\n");
                    indent(out, level + 1);
                    write_expr(content, level + 1, out);
                    out.push('\n');
                    indent(out, level);
                    let _ = write!(out, "</{name}>");
                }
            }
        }
        FluxExpr::ProcessStream { var, handlers } => {
            let _ = write!(out, "{{ process-stream ${var}:");
            for (i, handler) in handlers.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                out.push('\n');
                indent(out, level + 1);
                match handler {
                    Handler::On { label, var, body } => {
                        let _ = write!(out, "on {label} as ${var} return ");
                        write_expr(body, level + 1, out);
                    }
                    Handler::OnFirstPast { labels, body } => {
                        let _ = write!(out, "on-first {labels} return ");
                        write_expr(body, level + 1, out);
                    }
                }
            }
            out.push_str(" }");
        }
        FluxExpr::Buffered(e) => {
            out.push_str("{ ");
            let one_line = xquery_pretty(e).replace('\n', " ");
            let compact: String = one_line.split_whitespace().collect::<Vec<_>>().join(" ");
            out.push_str(&compact);
            out.push_str(" }");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PastSet;
    use flux_xquery::Expr;

    #[test]
    fn renders_paper_shape() {
        let mut past = PastSet::default();
        past.insert_label("title");
        past.insert_label("author");
        let flux = FluxExpr::Element {
            name: "results".into(),
            attributes: vec![],
            content: Box::new(FluxExpr::ProcessStream {
                var: "ROOT".into(),
                handlers: vec![Handler::On {
                    label: "bib".into(),
                    var: "bib".into(),
                    body: FluxExpr::ProcessStream {
                        var: "bib".into(),
                        handlers: vec![Handler::On {
                            label: "book".into(),
                            var: "book".into(),
                            body: FluxExpr::Element {
                                name: "result".into(),
                                attributes: vec![],
                                content: Box::new(FluxExpr::ProcessStream {
                                    var: "book".into(),
                                    handlers: vec![
                                        Handler::On {
                                            label: "title".into(),
                                            var: "t".into(),
                                            body: FluxExpr::StreamCopy("t".into()),
                                        },
                                        Handler::OnFirstPast {
                                            labels: past,
                                            body: FluxExpr::Buffered(Expr::Empty),
                                        },
                                    ],
                                }),
                            },
                        }],
                    },
                }],
            }),
        };
        let printed = pretty_flux(&flux);
        assert!(printed.contains("process-stream $ROOT:"), "{printed}");
        assert!(printed.contains("on bib as $bib return"), "{printed}");
        assert!(printed.contains("on title as $t return {$t}"), "{printed}");
        assert!(
            printed.contains("on-first past(author,title) return"),
            "{printed}"
        );
    }
}
