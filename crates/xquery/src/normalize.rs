//! Rewriting into the scheduling normal form (paper Sec. 3.1, step 1).
//!
//! The normal form is the common input language of the algebraic optimizer
//! and the FluX rewriter:
//!
//! * `let` bindings are inlined (values restricted to paths and strings);
//! * every `for` binds over a **single child step** (`for $x in $y/a`);
//!   multi-step sources become nested loops over fresh variables;
//! * `where` clauses become `if` expressions in the loop body;
//! * element-valued paths in content position become single-variable
//!   for-loops (`{$b/title}` ⇒ `for $t in $b/title return $t`), so the only
//!   remaining `Path` expressions are one-step `@attr` / `text()` reads;
//! * sequences are flat and contain no empty expressions.
//!
//! [`is_normal_form`] checks these invariants.

use crate::ast::*;
use crate::error::{Result, XQueryError};

/// Normalizes a query.
pub fn normalize(expr: &Expr) -> Result<Expr> {
    let mut n = Normalizer { counter: 0 };
    let inlined = inline_lets(expr, &mut Vec::new())?;
    n.normalize_expr(&inlined)
}

struct Normalizer {
    counter: u32,
}

impl Normalizer {
    fn fresh(&mut self) -> VarName {
        self.counter += 1;
        format!("{GENERATED_VAR_PREFIX}{}", self.counter)
    }

    fn normalize_expr(&mut self, expr: &Expr) -> Result<Expr> {
        match expr {
            Expr::Empty => Ok(Expr::Empty),
            Expr::StringLit(s) => Ok(Expr::StringLit(s.clone())),
            Expr::Var(v) => Ok(Expr::Var(v.clone())),
            Expr::Path(p) => self.normalize_path_expr(p),
            Expr::Sequence(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match self.normalize_expr(item)? {
                        Expr::Sequence(inner) => out.extend(inner),
                        Expr::Empty => {}
                        other => out.push(other),
                    }
                }
                Ok(Expr::seq(out))
            }
            Expr::Element {
                name,
                attributes,
                content,
            } => {
                for attr in attributes {
                    for part in &attr.value {
                        if let AttrPart::Expr(e) = part {
                            ensure_atomic(e)?;
                        }
                    }
                }
                Ok(Expr::Element {
                    name: name.clone(),
                    attributes: attributes.clone(),
                    content: Box::new(self.normalize_expr(content)?),
                })
            }
            Expr::For {
                var,
                source,
                where_clause,
                body,
            } => {
                let mut body = self.normalize_expr(body)?;
                if let Some(cond) = where_clause {
                    body = Expr::If {
                        cond: cond.clone(),
                        then_branch: Box::new(body),
                        else_branch: Box::new(Expr::Empty),
                    };
                }
                Ok(self.split_for(var.clone(), source.clone(), body))
            }
            Expr::Let { .. } => Err(XQueryError::Normalize {
                message: "let should have been inlined before normalization".to_string(),
            }),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => Ok(Expr::If {
                cond: cond.clone(),
                then_branch: Box::new(self.normalize_expr(then_branch)?),
                else_branch: Box::new(self.normalize_expr(else_branch)?),
            }),
        }
    }

    /// Splits `for $var in $s/a/b/c return body` into nested one-step loops.
    fn split_for(&mut self, var: VarName, source: Path, body: Expr) -> Expr {
        debug_assert!(!source.steps.is_empty());
        let mut hops: Vec<(VarName, Path)> = Vec::new();
        let mut current_start = source.start.clone();
        let n = source.steps.len();
        for (i, step) in source.steps.iter().enumerate() {
            let bind_var = if i + 1 == n {
                var.clone()
            } else {
                self.fresh()
            };
            hops.push((
                bind_var.clone(),
                Path {
                    start: current_start.clone(),
                    steps: vec![step.clone()],
                },
            ));
            current_start = bind_var;
        }
        let mut expr = body;
        for (bind_var, path) in hops.into_iter().rev() {
            expr = Expr::For {
                var: bind_var,
                source: path,
                where_clause: None,
                body: Box::new(expr),
            };
        }
        expr
    }

    /// Element-valued paths in content position become loops that copy the
    /// matched nodes; attribute/text tails stay as one-step path reads.
    fn normalize_path_expr(&mut self, path: &Path) -> Result<Expr> {
        if path.steps.is_empty() {
            return Ok(Expr::Var(path.start.clone()));
        }
        let last = path.steps.last().expect("nonempty");
        match last {
            Step::Child(_) => {
                let var = self.fresh();
                Ok(self.split_for(var.clone(), path.clone(), Expr::Var(var)))
            }
            Step::Attribute(_) | Step::Text => {
                let element_prefix = Path {
                    start: path.start.clone(),
                    steps: path.steps[..path.steps.len() - 1].to_vec(),
                };
                if element_prefix.steps.is_empty() {
                    return Ok(Expr::Path(path.clone()));
                }
                let var = self.fresh();
                let tail = Expr::Path(Path {
                    start: var.clone(),
                    steps: vec![last.clone()],
                });
                Ok(self.split_for(var, element_prefix, tail))
            }
        }
    }
}

/// Attribute value template expressions must be atomizable without loops.
fn ensure_atomic(expr: &Expr) -> Result<()> {
    match expr {
        Expr::Path(_) | Expr::Var(_) | Expr::StringLit(_) | Expr::Empty => Ok(()),
        Expr::Sequence(items) => {
            for item in items {
                ensure_atomic(item)?;
            }
            Ok(())
        }
        other => Err(XQueryError::unsupported(format!(
            "attribute value templates may only contain paths and strings, found {other:?}"
        ))),
    }
}

/// Inlines `let` bindings. Values are restricted to paths, variables and
/// string literals so substitution into path roots stays well-defined.
fn inline_lets(expr: &Expr, scope: &mut Vec<(VarName, LetValue)>) -> Result<Expr> {
    match expr {
        Expr::Let { var, value, body } => {
            let value = inline_lets(value, scope)?;
            let lv = match value {
                Expr::Path(p) => LetValue::Path(p),
                Expr::Var(v) => LetValue::Path(Path::var(v)),
                Expr::StringLit(s) => LetValue::Str(s),
                other => {
                    return Err(XQueryError::unsupported(format!(
                        "let values must be paths or strings in this fragment, found {other:?}"
                    )))
                }
            };
            scope.push((var.clone(), lv));
            let result = inline_lets(body, scope);
            scope.pop();
            result
        }
        Expr::Var(v) => match lookup(scope, v) {
            Some(LetValue::Path(p)) => Ok(if p.steps.is_empty() {
                Expr::Var(p.start.clone())
            } else {
                Expr::Path(p.clone())
            }),
            Some(LetValue::Str(s)) => Ok(Expr::StringLit(s.clone())),
            None => Ok(expr.clone()),
        },
        Expr::Path(p) => Ok(Expr::Path(subst_path(p, scope)?)),
        Expr::Empty | Expr::StringLit(_) => Ok(expr.clone()),
        Expr::Sequence(items) => {
            let items = items
                .iter()
                .map(|e| inline_lets(e, scope))
                .collect::<Result<Vec<_>>>()?;
            Ok(Expr::Sequence(items))
        }
        Expr::Element {
            name,
            attributes,
            content,
        } => {
            let mut new_attrs = Vec::with_capacity(attributes.len());
            for attr in attributes {
                let mut parts = Vec::with_capacity(attr.value.len());
                for part in &attr.value {
                    parts.push(match part {
                        AttrPart::Literal(t) => AttrPart::Literal(t.clone()),
                        AttrPart::Expr(e) => AttrPart::Expr(inline_lets(e, scope)?),
                    });
                }
                new_attrs.push(AttrConstructor {
                    name: attr.name.clone(),
                    value: parts,
                });
            }
            Ok(Expr::Element {
                name: name.clone(),
                attributes: new_attrs,
                content: Box::new(inline_lets(content, scope)?),
            })
        }
        Expr::For {
            var,
            source,
            where_clause,
            body,
        } => {
            let source = subst_path(source, scope)?;
            let where_clause = match where_clause {
                Some(c) => Some(Box::new(subst_cond(c, scope)?)),
                None => None,
            };
            // The loop variable shadows any outer let of the same name.
            let shadow = shadow_out(scope, var);
            let body = inline_lets(body, scope)?;
            restore(scope, shadow);
            Ok(Expr::For {
                var: var.clone(),
                source,
                where_clause,
                body: Box::new(body),
            })
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => Ok(Expr::If {
            cond: Box::new(subst_cond(cond, scope)?),
            then_branch: Box::new(inline_lets(then_branch, scope)?),
            else_branch: Box::new(inline_lets(else_branch, scope)?),
        }),
    }
}

enum LetValue {
    Path(Path),
    Str(String),
}

fn lookup<'s>(scope: &'s [(VarName, LetValue)], var: &str) -> Option<&'s LetValue> {
    scope.iter().rev().find(|(v, _)| v == var).map(|(_, lv)| lv)
}

/// Temporarily removes bindings shadowed by a loop variable.
fn shadow_out(
    scope: &mut Vec<(VarName, LetValue)>,
    var: &str,
) -> Vec<(usize, (VarName, LetValue))> {
    let mut removed = Vec::new();
    let mut i = 0;
    while i < scope.len() {
        if scope[i].0 == var {
            removed.push((i, scope.remove(i)));
        } else {
            i += 1;
        }
    }
    removed
}

fn restore(scope: &mut Vec<(VarName, LetValue)>, removed: Vec<(usize, (VarName, LetValue))>) {
    for (idx, binding) in removed {
        let at = idx.min(scope.len());
        scope.insert(at, binding);
    }
}

fn subst_path(path: &Path, scope: &[(VarName, LetValue)]) -> Result<Path> {
    match lookup(scope, &path.start) {
        None => Ok(path.clone()),
        Some(LetValue::Path(base)) => {
            let mut steps = base.steps.clone();
            steps.extend(path.steps.iter().cloned());
            Ok(Path {
                start: base.start.clone(),
                steps,
            })
        }
        Some(LetValue::Str(_)) => {
            if path.steps.is_empty() {
                Err(XQueryError::Normalize {
                    message: format!(
                        "internal: string-valued variable `${}` used as bare path",
                        path.start
                    ),
                })
            } else {
                Err(XQueryError::unsupported(format!(
                    "path steps on string-valued variable `${}`",
                    path.start
                )))
            }
        }
    }
}

fn subst_operand(op: &Operand, scope: &[(VarName, LetValue)]) -> Result<Operand> {
    Ok(match op {
        Operand::Path(p) => {
            if p.steps.is_empty() {
                if let Some(LetValue::Str(s)) = lookup(scope, &p.start) {
                    return Ok(Operand::StringLit(s.clone()));
                }
            }
            Operand::Path(subst_path(p, scope)?)
        }
        other => other.clone(),
    })
}

fn subst_cond(cond: &Cond, scope: &[(VarName, LetValue)]) -> Result<Cond> {
    Ok(match cond {
        Cond::Cmp { lhs, op, rhs } => Cond::Cmp {
            lhs: subst_operand(lhs, scope)?,
            op: *op,
            rhs: subst_operand(rhs, scope)?,
        },
        Cond::And(a, b) => Cond::And(
            Box::new(subst_cond(a, scope)?),
            Box::new(subst_cond(b, scope)?),
        ),
        Cond::Or(a, b) => Cond::Or(
            Box::new(subst_cond(a, scope)?),
            Box::new(subst_cond(b, scope)?),
        ),
        Cond::Not(c) => Cond::Not(Box::new(subst_cond(c, scope)?)),
        Cond::Exists(p) => Cond::Exists(subst_path(p, scope)?),
        Cond::Empty(p) => Cond::Empty(subst_path(p, scope)?),
        Cond::True => Cond::True,
        Cond::False => Cond::False,
    })
}

/// Checks the normal-form invariants.
pub fn is_normal_form(expr: &Expr) -> bool {
    match expr {
        Expr::Empty | Expr::StringLit(_) | Expr::Var(_) => true,
        Expr::Path(p) => {
            // Only one-step attribute/text reads survive normalization.
            p.steps.len() == 1 && matches!(p.steps[0], Step::Attribute(_) | Step::Text)
        }
        Expr::Sequence(items) => {
            items.len() >= 2
                && items
                    .iter()
                    .all(|i| !matches!(i, Expr::Sequence(_) | Expr::Empty) && is_normal_form(i))
        }
        Expr::Element { content, .. } => is_normal_form(content),
        Expr::For {
            source,
            where_clause,
            body,
            ..
        } => {
            where_clause.is_none()
                && source.steps.len() == 1
                && matches!(source.steps[0], Step::Child(_))
                && is_normal_form(body)
        }
        Expr::Let { .. } => false,
        Expr::If {
            then_branch,
            else_branch,
            ..
        } => is_normal_form(then_branch) && is_normal_form(else_branch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::pretty::pretty;

    fn norm(q: &str) -> Expr {
        let ast = parse_query(q).unwrap();
        let nf = normalize(&ast).unwrap();
        assert!(is_normal_form(&nf), "not in normal form:\n{}", pretty(&nf));
        nf
    }

    #[test]
    fn q3_normalizes() {
        let nf = norm(
            r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#,
        );
        let printed = pretty(&nf);
        // The multi-step source splits, and the content paths become loops.
        assert!(printed.contains("in $ROOT/bib return"), "{printed}");
        assert!(printed.contains("/book return"), "{printed}");
        assert!(printed.contains("in $b/title"), "{printed}");
        assert!(printed.contains("in $b/author"), "{printed}");
    }

    #[test]
    fn where_becomes_if() {
        let nf =
            norm(r#"<r>{ for $b in $ROOT/bib/book where $b/publisher = "X" return $b/title }</r>"#);
        let printed = pretty(&nf);
        assert!(printed.contains("if ($b/publisher = \"X\")"), "{printed}");
        assert!(!printed.contains("where"), "{printed}");
    }

    #[test]
    fn let_inlined_path() {
        let nf = norm(
            r#"let $books := $ROOT/bib/book return <r>{ for $b in $books/title return $b }</r>"#,
        );
        let printed = pretty(&nf);
        assert!(printed.contains("$ROOT/bib"), "{printed}");
        assert!(!printed.contains("let"), "{printed}");
    }

    #[test]
    fn let_inlined_string() {
        let nf = norm(
            r#"let $name := "Goedel" return <r>{ if ($ROOT/bib/book/author = $name) then $name else () }</r>"#,
        );
        let printed = pretty(&nf);
        assert!(printed.contains("\"Goedel\""), "{printed}");
    }

    #[test]
    fn let_shadowed_by_for() {
        let nf = norm(r#"let $x := "s" return <r>{ for $x in $ROOT/bib/book return $x }</r>"#);
        let printed = pretty(&nf);
        // The for-bound $x must not be replaced by "s".
        assert!(printed.contains("return $x"), "{printed}");
        assert!(!printed.contains("return \"s\""), "{printed}");
    }

    #[test]
    fn attribute_tail_preserved() {
        let nf = norm(r#"<r>{$ROOT/bib/book/@year}</r>"#);
        let printed = pretty(&nf);
        assert!(printed.contains("/@year"), "{printed}");
        // And it hangs off a fresh loop variable, not a multi-step path.
        assert!(printed.contains("$__flux"), "{printed}");
    }

    #[test]
    fn text_tail_preserved() {
        let nf = norm(r#"<r>{$ROOT/bib/book/title/text()}</r>"#);
        let printed = pretty(&nf);
        assert!(printed.contains("/text()"), "{printed}");
    }

    #[test]
    fn direct_attr_path_stays() {
        let nf = norm(r#"<r>{ for $b in $ROOT/bib/book return $b/@year }</r>"#);
        let printed = pretty(&nf);
        assert!(printed.contains("$b/@year"), "{printed}");
    }

    #[test]
    fn sequences_flattened() {
        let nf = norm(r#"<r>{ ("a", ("b", "c"), ()) }</r>"#);
        match nf {
            Expr::Element { content, .. } => match *content {
                Expr::Sequence(items) => assert_eq!(items.len(), 3),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_constructor_value_rejected() {
        let ast = parse_query(r#"let $v := <x/> return <r>{$v}</r>"#).unwrap();
        assert!(normalize(&ast).is_err());
    }

    #[test]
    fn join_query_normalizes() {
        let nf = norm(
            r#"<out>{ for $b in $ROOT/top/bib/book, $e in $ROOT/top/reviews/entry
                      where $b/title = $e/title
                      return <hit>{$b/title}{$e/price}</hit> }</out>"#,
        );
        let printed = pretty(&nf);
        assert!(printed.contains("if ($b/title = $e/title)"), "{printed}");
    }

    #[test]
    fn idempotent() {
        let q =
            r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}</result> }</results>"#;
        let once = normalize(&parse_query(q).unwrap()).unwrap();
        let twice = normalize(&once).unwrap();
        // Fresh-variable numbering differs, so compare shapes via NF check
        // and loop count.
        assert!(is_normal_form(&twice));
        let mut count_once = 0;
        once.visit(&mut |e| {
            if matches!(e, Expr::For { .. }) {
                count_once += 1;
            }
        });
        let mut count_twice = 0;
        twice.visit(&mut |e| {
            if matches!(e, Expr::For { .. }) {
                count_twice += 1;
            }
        });
        assert_eq!(count_once, count_twice);
    }
}
