//! Word-at-a-time (SWAR) byte scanning primitives.
//!
//! The scanner's hot loops — text runs (`read_while(|b| b != b'<')`),
//! delimiter searches (`read_until`) and newline accounting for positions —
//! all reduce to "find/count one byte value in a window". These helpers do
//! that eight bytes at a time with plain `u64` arithmetic (no `unsafe`, no
//! platform intrinsics), using the carry-free zero-byte mask so matches are
//! exact: `(x & !HI) + !HI` cannot carry across lanes, which the classic
//! `x - LO` trick cannot guarantee.
//!
//! The shard splitter (`flux_shard`) reuses [`find_byte`] to hop from `<`
//! to `<` when choosing chunk boundaries, so the same kernel serves both
//! the sequential hot path and the parallel pipeline.

const HI: u64 = 0x8080_8080_8080_8080;
const LO: u64 = 0x0101_0101_0101_0101;

/// A mask with `0x80` in every lane whose byte in `x` is zero, and `0x00`
/// in every other lane. Exact: the per-lane addition cannot carry into the
/// next lane, so neighbouring zero bytes never produce false positives.
#[inline]
pub(crate) fn zero_byte_mask(x: u64) -> u64 {
    !(((x & !HI).wrapping_add(!HI)) | x | !HI)
}

/// Broadcasts `b` to all eight lanes.
#[inline]
pub(crate) fn broadcast(b: u8) -> u64 {
    LO.wrapping_mul(b as u64)
}

/// Index of the first occurrence of `needle` in `haystack`.
///
/// Equivalent to `haystack.iter().position(|&b| b == needle)`, eight bytes
/// per step.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let pat = broadcast(needle);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let mask = zero_byte_mask(word ^ pat);
        if mask != 0 {
            return Some(offset + (mask.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// Number of occurrences of `needle` in `haystack` and the index of the
/// last one. One pass, eight bytes per step — this is what keeps the
/// scanner's line/column accounting off the per-byte path.
#[inline]
pub fn count_byte_with_last(haystack: &[u8], needle: u8) -> (usize, Option<usize>) {
    let pat = broadcast(needle);
    let mut count = 0usize;
    let mut last = None;
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let mask = zero_byte_mask(word ^ pat);
        if mask != 0 {
            count += (mask.count_ones()) as usize;
            last = Some(offset + 7 - (mask.leading_zeros() / 8) as usize);
        }
        offset += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b == needle {
            count += 1;
            last = Some(offset + i);
        }
    }
    (count, last)
}

/// Index of the first occurrence of `needle` in `haystack`, for multi-byte
/// needles: hops between first-byte candidates with [`find_byte`] and
/// verifies the remainder at each. Shared by the scanner's `read_until`
/// and the shard splitter's construct skipping.
#[inline]
pub fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    debug_assert!(!needle.is_empty());
    let mut i = 0;
    while i + needle.len() <= haystack.len() {
        // Candidates must leave room for the whole needle.
        match find_byte(&haystack[i..=haystack.len() - needle.len()], needle[0]) {
            Some(at) => {
                let cand = i + at;
                if &haystack[cand..cand + needle.len()] == needle {
                    return Some(cand);
                }
                i = cand + 1;
            }
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_matches_naive() {
        let cases: &[&[u8]] = &[
            b"",
            b"<",
            b"abc",
            b"abc<def",
            b"<<<<",
            b"aaaaaaaaaaaaaaaa<",
            b"aaaaaaa<aaaaaaaa<",
            b"exactly8",
            b"exactly8<",
        ];
        for hay in cases {
            for needle in [b'<', b'a', b'z', 0u8, 0xFF] {
                assert_eq!(
                    find_byte(hay, needle),
                    hay.iter().position(|&b| b == needle),
                    "haystack {hay:?} needle {needle}"
                );
            }
        }
    }

    #[test]
    fn find_byte_handles_high_bytes() {
        // 0x80 and multi-byte UTF-8 lanes must not confuse the mask.
        let hay = "grüße 💡 <tag".as_bytes();
        assert_eq!(find_byte(hay, b'<'), hay.iter().position(|&b| b == b'<'));
        assert_eq!(find_byte(hay, 0x80), hay.iter().position(|&b| b == 0x80));
    }

    #[test]
    fn count_with_last_matches_naive() {
        let cases: &[&[u8]] = &[
            b"",
            b"\n",
            b"no newlines here at all....",
            b"a\nb\nc\n",
            b"\n\n\n\n\n\n\n\n\n",
            b"ends with eight bytes\nxxxxxxx",
            b"x\nyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\n",
        ];
        for hay in cases {
            let naive_count = hay.iter().filter(|&&b| b == b'\n').count();
            let naive_last = hay.iter().rposition(|&b| b == b'\n');
            assert_eq!(
                count_byte_with_last(hay, b'\n'),
                (naive_count, naive_last),
                "haystack {hay:?}"
            );
        }
    }

    #[test]
    fn find_subslice_matches_naive() {
        let hay = b"xx-->x--->x-->";
        for needle in [b"-->".as_slice(), b"--->", b"x", b"zz", b"xx-->x--->x-->"] {
            let naive = hay
                .windows(needle.len())
                .position(|w| w == needle)
                .filter(|_| needle.len() <= hay.len());
            assert_eq!(find_subslice(hay, needle), naive, "needle {needle:?}");
        }
        assert_eq!(find_subslice(b"ab", b"abc"), None, "needle longer than hay");
        assert_eq!(find_subslice(b"", b"a"), None);
    }

    #[test]
    fn exhaustive_small_windows() {
        // Every placement of the needle in windows up to 3 words long.
        for len in 0..24 {
            for at in 0..len {
                let mut v = vec![b'x'; len];
                v[at] = b'<';
                assert_eq!(find_byte(&v, b'<'), Some(at), "len {len} at {at}");
                assert_eq!(count_byte_with_last(&v, b'<'), (1, Some(at)));
            }
            let v = vec![b'x'; len];
            assert_eq!(find_byte(&v, b'<'), None);
            assert_eq!(count_byte_with_last(&v, b'<'), (0, None));
        }
    }
}
