//! Escaping and unescaping of XML character data and attribute values.
//!
//! Supports the five predefined entities (`&lt;`, `&gt;`, `&amp;`, `&apos;`,
//! `&quot;`) and decimal/hexadecimal character references.

use crate::error::{Position, Result, XmlError};

/// Appends `text` to `out`, escaping `<`, `>` and `&`.
///
/// This is the escaping applied to character data (element content).
pub fn escape_text_into(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(ch),
        }
    }
}

/// Returns `text` with character-data escaping applied.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_text_into(text, &mut out);
    out
}

/// Appends `value` to `out`, escaping `<`, `&` and `"` for use inside a
/// double-quoted attribute value.
pub fn escape_attr_into(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

/// Returns `value` with attribute-value escaping applied.
pub fn escape_attr(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    escape_attr_into(value, &mut out);
    out
}

/// Resolves an entity name (the part between `&` and `;`) to its replacement
/// text, handling the five predefined entities and character references.
///
/// Returns `None` for undefined entities.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let rest = name.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Replaces all entity and character references in `raw` and returns the
/// resulting text. `pos` is used for error reporting only.
pub fn unescape(raw: &str, pos: Position) -> Result<String> {
    let mut out = String::with_capacity(raw.len());
    unescape_into(raw, pos, &mut out)?;
    Ok(out)
}

/// Appends the unescaped form of `raw` to `out` — the allocation-free
/// variant of [`unescape`] the streaming reader uses with recycled buffers.
pub fn unescape_into(raw: &str, pos: Position, out: &mut String) -> Result<()> {
    if !raw.contains('&') {
        out.push_str(raw);
        return Ok(());
    }
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp + 1..];
        let semi = rest.find(';').ok_or_else(|| XmlError::Syntax {
            message: "unterminated entity reference".to_string(),
            pos,
        })?;
        let name = &rest[..semi];
        match resolve_entity(name) {
            Some(ch) => out.push(ch),
            None => {
                return Err(XmlError::UnknownEntity {
                    name: name.to_string(),
                    pos,
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basic() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(escape_text(""), "");
    }

    #[test]
    fn escape_attr_basic() {
        assert_eq!(
            escape_attr(r#"say "hi" & <go>"#),
            "say &quot;hi&quot; &amp; &lt;go>"
        );
    }

    #[test]
    fn escape_preserves_unicode() {
        assert_eq!(escape_text("schön & gut"), "schön &amp; gut");
    }

    #[test]
    fn resolve_predefined() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("nbsp"), None);
    }

    #[test]
    fn resolve_char_refs() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#X41"), Some('A'));
        assert_eq!(resolve_entity("#x2764"), Some('\u{2764}'));
        assert_eq!(resolve_entity("#xD800"), None, "surrogates are not chars");
        assert_eq!(resolve_entity("#"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
    }

    #[test]
    fn unescape_round_trip() {
        let original = "a < b & \"c\" > 'd'";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped, Position::default()).unwrap(), original);
    }

    #[test]
    fn unescape_mixed() {
        let raw = "x &lt; y &#38; z &#x26; w";
        assert_eq!(unescape(raw, Position::default()).unwrap(), "x < y & z & w");
    }

    #[test]
    fn unescape_no_entities_is_identity() {
        assert_eq!(unescape("hello", Position::default()).unwrap(), "hello");
    }

    #[test]
    fn unescape_unknown_entity_errors() {
        let err = unescape("&bogus;", Position::default()).unwrap_err();
        assert!(matches!(err, XmlError::UnknownEntity { ref name, .. } if name == "bogus"));
    }

    #[test]
    fn unescape_unterminated_errors() {
        let err = unescape("a &lt b", Position::default()).unwrap_err();
        assert!(matches!(err, XmlError::Syntax { .. }));
    }
}
