//! E8 — XSAX event throughput: raw well-formedness parsing vs. DTD
//! validation vs. validation with registered past queries.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flux_bench::Domain;
use flux_dtd::Dtd;
use flux_xml::{RawEvent, XmlReader};
use flux_xsax::{PastLabels, XsaxParser};

fn xsax_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_xsax_throughput");
    let doc = Domain::BibFig1.document(8.0, 42);
    let dtd = Dtd::parse(Domain::BibFig1.dtd()).expect("dtd");
    group.throughput(Throughput::Bytes(doc.len() as u64));

    group.bench_function("raw_parse", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let mut reader = XmlReader::new(doc.as_bytes());
            let mut ev = RawEvent::new();
            while reader.next_into(&mut ev).expect("parse") {
                n += 1;
            }
            n
        })
    });

    group.bench_function("xsax_validate", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let mut parser = XsaxParser::new(doc.as_bytes(), &dtd).expect("xsax");
            let mut ev = RawEvent::new();
            while parser.next_into(&mut ev).expect("validate").is_some() {
                n += 1;
            }
            n
        })
    });

    let book = dtd.lookup("book").expect("book");
    let title = dtd.lookup("title").expect("title");
    let author = dtd.lookup("author").expect("author");
    group.bench_function("xsax_with_past", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let mut parser = XsaxParser::new(doc.as_bytes(), &dtd).expect("xsax");
            parser
                .register_past(book, PastLabels::labels([title, author]))
                .expect("register");
            let mut ev = RawEvent::new();
            while parser.next_into(&mut ev).expect("validate").is_some() {
                n += 1;
            }
            n
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = xsax_throughput
}
criterion_main!(benches);
