//! # flux_symbols
//!
//! Interned element-name symbols — the foundation type every FluXQuery
//! layer shares.
//!
//! The paper's central claim (Koch et al., VLDB 2004) is that memory and
//! CPU stay bounded by the *schema*, not the document. The event alphabet of
//! a validated stream is the fixed, schema-derived set of element names, so
//! every layer — parser, validator, scheduler, runtime — can work on dense
//! `u32` [`Symbol`]s instead of heap-allocated strings. One [`SymbolTable`]
//! is built from the DTD and cloned into the XML reader; because cloning
//! preserves indices, a symbol produced by the parser *is* the symbol the
//! schema automata transition on, with no per-event re-hashing.
//!
//! Two pseudo-symbols exist: [`SymbolTable::TEXT`] for character data (used
//! by the `past(...)` analysis, where text behaves like a label that mixed
//! content can always still produce) and [`SymbolTable::DOCUMENT`] for the
//! virtual document node.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for the name map. Element and attribute names are
/// short (a word or two), and interning sits on the parser's per-tag hot
/// path — SipHash's per-call setup costs more than hashing the whole name.
/// Flood resistance is not a goal here: the bounded-interner mode already
/// caps what adversarial input can make the table store, and a collision
/// only costs a probe, not a correctness failure.
#[derive(Default)]
pub struct NameHasher {
    hash: u64,
}

impl Hasher for NameHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        let mut h = self.hash;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = (h.rotate_left(5) ^ word).wrapping_mul(K);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | b as u64;
        }
        h = (h.rotate_left(5) ^ tail ^ bytes.len() as u64).wrapping_mul(K);
        self.hash = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type NameMap = HashMap<String, Symbol, BuildHasherDefault<NameHasher>>;

/// An interned element name (or pseudo-node kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from its dense index. Only meaningful for
    /// indices handed out by a [`SymbolTable`] (or a clone of it — clones
    /// preserve indices, which is what lets the reader and the schema
    /// automata share symbols without translation).
    pub fn from_index(i: usize) -> Symbol {
        Symbol(u32::try_from(i).expect("too many symbols"))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between element names and [`Symbol`]s.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: NameMap,
}

impl SymbolTable {
    /// The pseudo-symbol for character data.
    pub const TEXT: Symbol = Symbol(0);
    /// The pseudo-symbol for the virtual document node.
    pub const DOCUMENT: Symbol = Symbol(1);
    /// Sentinel returned by [`SymbolTable::intern_bounded`] when the table
    /// is at capacity. It is **not** an index into the table — callers that
    /// may see it must carry the name out of band (the XML reader stores it
    /// in the event's recycled buffers) and resolve through an
    /// overflow-aware accessor instead of [`SymbolTable::name`].
    pub const OVERFLOW: Symbol = Symbol(u32::MAX);

    /// Creates a table pre-populated with the pseudo-symbols.
    pub fn new() -> Self {
        let mut table = SymbolTable {
            names: Vec::new(),
            by_name: NameMap::default(),
        };
        let text = table.intern("#text");
        let document = table.intern("#document");
        debug_assert_eq!(text, Self::TEXT);
        debug_assert_eq!(document, Self::DOCUMENT);
        table
    }

    /// Interns `name`, returning its symbol (idempotent). Allocates only
    /// the first time a name is seen; the steady state is a hash lookup.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol::from_index(self.names.len());
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// Interns `name` only while the table holds fewer than `cap` entries;
    /// already-interned names always resolve. Returns
    /// [`SymbolTable::OVERFLOW`] when the name is new and the table is
    /// full.
    ///
    /// This is the capacity-capped mode for **unvalidated** streams: on
    /// schema-validated input the name alphabet is fixed by the DTD, but an
    /// adversarial raw stream can mint unboundedly many distinct names. A
    /// cap restores a hard memory bound — the table stores at most `cap`
    /// names, and overflowing names travel as per-event strings instead.
    pub fn intern_bounded(&mut self, name: &str, cap: usize) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        if self.names.len() >= cap {
            return Self::OVERFLOW;
        }
        self.intern(name)
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Placeholder rendered by [`SymbolTable::name`] for symbols the table
    /// does not hold (the [`SymbolTable::OVERFLOW`] sentinel, or a symbol
    /// minted by a different table). Never a legal XML name, so it cannot
    /// be confused with real data.
    pub const UNRESOLVED_NAME: &'static str = "#overflow";

    /// The name behind a symbol, or `None` when the table does not hold it
    /// — the safe path for streams that may carry
    /// [`SymbolTable::OVERFLOW`] (resolve those through the event's
    /// literal-name side channel, e.g. `RawEvent::name_str`).
    pub fn try_name(&self, sym: Symbol) -> Option<&str> {
        self.names.get(sym.index()).map(String::as_str)
    }

    /// The name behind a symbol. For a symbol the table does not hold
    /// (notably [`SymbolTable::OVERFLOW`]) this returns
    /// [`SymbolTable::UNRESOLVED_NAME`] instead of panicking; callers that
    /// must render the real name of a possibly-overflowed symbol should
    /// use the event's literal-name accessors (`name_str`) or
    /// [`SymbolTable::try_name`].
    pub fn name(&self, sym: Symbol) -> &str {
        self.try_name(sym).unwrap_or(Self::UNRESOLVED_NAME)
    }

    /// Deterministic heap bytes held by the interned names (length-based;
    /// the reverse map's keys mirror `names`, so the figure is doubled to
    /// stay honest about both directions).
    pub fn heap_bytes(&self) -> usize {
        2 * self.names.iter().map(String::len).sum::<usize>()
    }

    /// Number of interned symbols, including the two pseudo-symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All element symbols (excluding the pseudo-symbols).
    pub fn element_symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (2..self.names.len()).map(Symbol::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a1 = t.intern("book");
        let a2 = t.intern("book");
        assert_eq!(a1, a2);
        assert_eq!(t.name(a1), "book");
    }

    #[test]
    fn pseudo_symbols_reserved() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup("#text"), Some(SymbolTable::TEXT));
        assert_eq!(t.lookup("#document"), Some(SymbolTable::DOCUMENT));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn element_symbols_excludes_pseudo() {
        let mut t = SymbolTable::new();
        let b = t.intern("book");
        let a = t.intern("author");
        let got: Vec<_> = t.element_symbols().collect();
        assert_eq!(got, vec![b, a]);
    }

    #[test]
    fn lookup_missing() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup("nope"), None);
    }

    #[test]
    fn bounded_interning_caps_growth() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        // Cap at the current size: known names resolve, new names overflow.
        let cap = t.len();
        assert_eq!(t.intern_bounded("a", cap), a);
        assert_eq!(t.intern_bounded("b", cap), SymbolTable::OVERFLOW);
        assert_eq!(t.len(), cap, "overflow must not grow the table");
        // With headroom the name interns normally.
        let b = t.intern_bounded("b", cap + 1);
        assert_ne!(b, SymbolTable::OVERFLOW);
        assert_eq!(t.lookup("b"), Some(b));
        // And the sentinel is never a valid index.
        assert_eq!(SymbolTable::OVERFLOW.index(), u32::MAX as usize);
    }

    #[test]
    fn heap_bytes_counts_both_directions() {
        let mut t = SymbolTable::new();
        let base = t.heap_bytes();
        t.intern("book");
        assert_eq!(t.heap_bytes(), base + 2 * "book".len());
        // Idempotent interning adds nothing.
        t.intern("book");
        assert_eq!(t.heap_bytes(), base + 2 * "book".len());
    }

    #[test]
    fn overflow_symbol_resolves_without_panicking() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        assert_eq!(t.try_name(a), Some("a"));
        assert_eq!(t.try_name(SymbolTable::OVERFLOW), None);
        assert_eq!(t.name(SymbolTable::OVERFLOW), SymbolTable::UNRESOLVED_NAME);
        // A foreign symbol past the table's end is equally safe.
        assert_eq!(t.try_name(Symbol::from_index(999)), None);
        assert_eq!(
            t.name(Symbol::from_index(999)),
            SymbolTable::UNRESOLVED_NAME
        );
    }

    #[test]
    fn clones_preserve_indices() {
        let mut t = SymbolTable::new();
        let book = t.intern("book");
        let mut clone = t.clone();
        assert_eq!(clone.lookup("book"), Some(book));
        assert_eq!(clone.intern("book"), book);
        // New names in the clone extend past the shared prefix.
        let extra = clone.intern("pamphlet");
        assert_eq!(extra.index(), t.len());
        assert_eq!(t.lookup("pamphlet"), None);
    }
}
