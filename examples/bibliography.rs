//! The paper's bibliography scenario at scale: generate documents with the
//! seeded generator and compare the three engine architectures on memory
//! and runtime.
//!
//! Run with: `cargo run --release --example bibliography`

use fluxquery::xmlgen::{bib_string, BibConfig};
use fluxquery::{AnyEngine, EngineKind, Input, PAPER_WEAK_DTD};
use std::sync::Arc;

const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return
    <result>{$b/title}{$b/author}</result> }</results>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("engine        books    input-bytes    peak-buffer    runtime");
    println!("------        -----    -----------    -----------    -------");
    for &books in &[100usize, 1_000, 10_000] {
        let doc = Arc::new(bib_string(&BibConfig::weak(books, 42)).into_bytes());
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, Q3, PAPER_WEAK_DTD)?;
            let mut out = Vec::new();
            let stats = engine.run_input(Input::from_shared_bytes(Arc::clone(&doc)), &mut out)?;
            println!(
                "{:<12} {:>6}    {:>11}    {:>11}    {:>7.1?}",
                kind.label(),
                books,
                doc.len(),
                stats.peak_buffer_bytes,
                stats.duration
            );
        }
        println!();
    }
    println!("FluXQuery's peak buffer stays flat while DOM and projection grow");
    println!("linearly with the document — the paper's central claim.");
    Ok(())
}
