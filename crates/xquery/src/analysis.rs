//! Static analysis over query expressions: free variables and per-variable
//! dependency sets. The FluX scheduler and the BDF construction are built on
//! these primitives.

use crate::ast::*;
use std::collections::BTreeSet;

/// What an expression reads from the children/attributes of one variable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepSet {
    /// Child element labels (first steps of paths rooted at the variable).
    pub labels: BTreeSet<String>,
    /// Whether `$v/text()` is read.
    pub text: bool,
    /// Attribute names read directly off the variable (`$v/@a`).
    pub attributes: BTreeSet<String>,
    /// Whether the variable is copied wholesale (`$v` in content position),
    /// which requires the entire subtree.
    pub whole: bool,
}

impl DepSet {
    /// True when nothing below the variable is needed (attributes are
    /// available at the start tag and don't count as child data).
    pub fn needs_no_children(&self) -> bool {
        self.labels.is_empty() && !self.text && !self.whole
    }

    pub fn union(&mut self, other: &DepSet) {
        self.labels.extend(other.labels.iter().cloned());
        self.text |= other.text;
        self.attributes.extend(other.attributes.iter().cloned());
        self.whole |= other.whole;
    }
}

/// Free variables of an expression (variables used but not bound inside).
pub fn free_vars(expr: &Expr) -> BTreeSet<VarName> {
    let mut out = BTreeSet::new();
    collect_free(expr, &mut Vec::new(), &mut out);
    out
}

fn collect_free(expr: &Expr, bound: &mut Vec<VarName>, out: &mut BTreeSet<VarName>) {
    let note = |var: &str, bound: &[VarName], out: &mut BTreeSet<VarName>| {
        if !bound.iter().any(|b| b == var) {
            out.insert(var.to_string());
        }
    };
    match expr {
        Expr::Empty | Expr::StringLit(_) => {}
        Expr::Var(v) => note(v, bound, out),
        Expr::Path(p) => note(&p.start, bound, out),
        Expr::Sequence(items) => {
            for item in items {
                collect_free(item, bound, out);
            }
        }
        Expr::Element {
            attributes,
            content,
            ..
        } => {
            for attr in attributes {
                for part in &attr.value {
                    if let AttrPart::Expr(e) = part {
                        collect_free(e, bound, out);
                    }
                }
            }
            collect_free(content, bound, out);
        }
        Expr::For {
            var,
            source,
            where_clause,
            body,
        } => {
            note(&source.start, bound, out);
            bound.push(var.clone());
            if let Some(cond) = where_clause {
                collect_free_cond(cond, bound, out);
            }
            collect_free(body, bound, out);
            bound.pop();
        }
        Expr::Let { var, value, body } => {
            collect_free(value, bound, out);
            bound.push(var.clone());
            collect_free(body, bound, out);
            bound.pop();
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_free_cond(cond, bound, out);
            collect_free(then_branch, bound, out);
            collect_free(else_branch, bound, out);
        }
    }
}

fn collect_free_cond(cond: &Cond, bound: &mut [VarName], out: &mut BTreeSet<VarName>) {
    let mut paths = Vec::new();
    cond.paths(&mut paths);
    for p in paths {
        if !bound.contains(&p.start) {
            out.insert(p.start.clone());
        }
    }
}

/// All paths in `expr` rooted at `var` (respecting shadowing), including
/// for-loop sources and condition operands.
pub fn paths_rooted_at(expr: &Expr, var: &str) -> Vec<Path> {
    let mut out = Vec::new();
    collect_paths(expr, var, &mut out);
    out
}

fn collect_paths(expr: &Expr, var: &str, out: &mut Vec<Path>) {
    match expr {
        Expr::Empty | Expr::StringLit(_) => {}
        Expr::Var(v) => {
            if v == var {
                out.push(Path::var(var));
            }
        }
        Expr::Path(p) => {
            if p.start == var {
                out.push(p.clone());
            }
        }
        Expr::Sequence(items) => {
            for item in items {
                collect_paths(item, var, out);
            }
        }
        Expr::Element {
            attributes,
            content,
            ..
        } => {
            for attr in attributes {
                for part in &attr.value {
                    if let AttrPart::Expr(e) = part {
                        collect_paths(e, var, out);
                    }
                }
            }
            collect_paths(content, var, out);
        }
        Expr::For {
            var: bound,
            source,
            where_clause,
            body,
        } => {
            if source.start == var {
                out.push(source.clone());
            }
            if bound == var {
                return; // shadowed below
            }
            if let Some(cond) = where_clause {
                let mut paths = Vec::new();
                cond.paths(&mut paths);
                out.extend(paths.into_iter().filter(|p| p.start == var));
            }
            collect_paths(body, var, out);
        }
        Expr::Let {
            var: bound,
            value,
            body,
        } => {
            collect_paths(value, var, out);
            if bound != var {
                collect_paths(body, var, out);
            }
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut paths = Vec::new();
            cond.paths(&mut paths);
            out.extend(paths.into_iter().filter(|p| p.start == var));
            collect_paths(then_branch, var, out);
            collect_paths(else_branch, var, out);
        }
    }
}

/// Summarises what `expr` needs from `var`'s children and attributes.
pub fn deps_on(expr: &Expr, var: &str) -> DepSet {
    let mut deps = DepSet::default();
    for path in paths_rooted_at(expr, var) {
        match path.steps.first() {
            None => deps.whole = true,
            Some(Step::Child(label)) => {
                deps.labels.insert(label.clone());
            }
            Some(Step::Attribute(name)) => {
                deps.attributes.insert(name.clone());
            }
            Some(Step::Text) => deps.text = true,
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn free_vars_basic() {
        let e = parse_query("<r>{ for $b in $ROOT/bib/book return $b/title }</r>").unwrap();
        let fv = free_vars(&e);
        assert_eq!(fv, BTreeSet::from(["ROOT".to_string()]));
    }

    #[test]
    fn free_vars_join_and_shadowing() {
        let e = parse_query(
            "<r>{ for $b in $ROOT/a/x return ( $b/t, $outer/k, for $b in $ROOT/a/y return $b ) }</r>",
        )
        .unwrap();
        let fv = free_vars(&e);
        assert!(fv.contains("ROOT"));
        assert!(fv.contains("outer"));
        assert!(!fv.contains("b"));
    }

    #[test]
    fn free_vars_in_where() {
        let e = parse_query("<r>{ for $x in $ROOT/r/a where $x/k = $y/k return $x }</r>").unwrap();
        assert!(free_vars(&e).contains("y"));
    }

    #[test]
    fn deps_labels_and_whole() {
        let e =
            parse_query(r#"<result>{ $b/title }{ for $a in $b/author return $a }{ $b }</result>"#)
                .unwrap();
        let deps = deps_on(&e, "b");
        assert_eq!(
            deps.labels,
            BTreeSet::from(["title".to_string(), "author".to_string()])
        );
        assert!(deps.whole);
        assert!(!deps.text);
    }

    #[test]
    fn deps_attributes_do_not_count_as_children() {
        let e = parse_query(r#"<r year="{$b/@year}"/>"#).unwrap();
        let deps = deps_on(&e, "b");
        assert!(deps.needs_no_children());
        assert_eq!(deps.attributes, BTreeSet::from(["year".to_string()]));
    }

    #[test]
    fn deps_respect_shadowing() {
        // The inner loop rebinds $b; its body's $b/x is not an outer dep.
        let e = parse_query("<r>{ $b/t, for $b in $ROOT/q/z return $b/x }</r>").unwrap();
        let deps = deps_on(&e, "b");
        assert_eq!(deps.labels, BTreeSet::from(["t".to_string()]));
    }

    #[test]
    fn deps_in_conditions() {
        let e = parse_query(
            r#"<r>{ if ($b/author = "X" and exists($b/editor)) then "y" else () }</r>"#,
        )
        .unwrap();
        let deps = deps_on(&e, "b");
        assert_eq!(
            deps.labels,
            BTreeSet::from(["author".to_string(), "editor".to_string()])
        );
    }

    #[test]
    fn deps_text() {
        let e = parse_query("<r>{$t/text()}</r>").unwrap();
        let deps = deps_on(&e, "t");
        assert!(deps.text);
        assert!(deps.labels.is_empty());
        assert!(!deps.whole);
    }

    #[test]
    fn deps_multi_step_counts_first_label() {
        let e = parse_query("<r>{$b/title/sub/text()}</r>").unwrap();
        let deps = deps_on(&e, "b");
        assert_eq!(deps.labels, BTreeSet::from(["title".to_string()]));
    }
}
