//! Minimal streaming gzip (RFC 1952) / DEFLATE (RFC 1951) decoder.
//!
//! Vendored for the `flux_xml` `gzip` feature: the build environment has
//! no registry access, so transparent `.gz` ingestion ships its own
//! decoder. The design goal is *bounded memory on unbounded input*, not
//! raw speed: [`GzDecoder`] wraps any [`Read`] and is itself a [`Read`],
//! holding a fixed 32 KiB history ring, a small input buffer and a bounded
//! pending-output buffer — decompressing a multi-GB member never
//! materialises more than a few tens of KiB.
//!
//! Decoding is strict: CRC32 and ISIZE trailers are verified, and
//! concatenated members (as produced by `cat a.gz b.gz`) are decoded
//! back-to-back like `gzip -d` does.
//!
//! [`gzip_compress_stored`] is the matching encoder for tests and tools:
//! it emits valid gzip using only *stored* (uncompressed) DEFLATE blocks,
//! which every decoder — including this one — must accept.

use std::io::{self, Read};

/// Sliding-window size mandated by DEFLATE.
const WINDOW: usize = 32 * 1024;
/// Input read granularity.
const IN_CHUNK: usize = 8 * 1024;
/// Decode-ahead bound: one `fill` call stops appending once this much
/// pending output is buffered (a single match may overshoot by ≤ 258).
const PENDING_TARGET: usize = 32 * 1024;

/// Order in which code-length-code lengths are stored (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];
/// Base match lengths for symbols 257..=285 and their extra-bit counts.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distances for symbols 0..=29 and their extra-bit counts.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("gzip: {msg}"))
}

fn eof(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        format!("gzip: unexpected end of input ({msg})"),
    )
}

/// The CRC-32 (IEEE 802.3) table, built once per decoder.
fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// A canonical Huffman decoding table: per-length symbol counts plus the
/// symbols sorted by (code length, symbol) — decoded one bit at a time
/// with the canonical first-code walk. Compact and allocation-light; this
/// decoder optimises for simplicity, not throughput.
struct Huffman {
    counts: [u16; 16],
    symbols: Vec<u16>,
}

impl Huffman {
    /// Builds a table from per-symbol code lengths (0 = unused).
    fn new(lengths: &[u8]) -> io::Result<Huffman> {
        let mut counts = [0u16; 16];
        for &l in lengths {
            if l as usize > 15 {
                return Err(bad("code length exceeds 15"));
            }
            counts[l as usize] += 1;
        }
        // Over-subscribed codes are invalid; incomplete codes are legal
        // only in degenerate cases the decode path rejects naturally.
        let mut left = 1i32;
        for &count in &counts[1..] {
            left = (left << 1) - count as i32;
            if left < 0 {
                return Err(bad("over-subscribed Huffman code"));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l != 0 {
                symbols[offsets[l as usize] as usize] = sym as u16;
                offsets[l as usize] += 1;
            }
        }
        counts[0] = 0;
        Ok(Huffman { counts, symbols })
    }

    /// The fixed literal/length table (RFC 1951 §3.2.6).
    fn fixed_literals() -> Huffman {
        let mut lengths = [0u8; 288];
        for (i, l) in lengths.iter_mut().enumerate() {
            *l = match i {
                0..=143 => 8,
                144..=255 => 9,
                256..=279 => 7,
                _ => 8,
            };
        }
        Huffman::new(&lengths).expect("fixed table is valid")
    }

    /// The fixed distance table: 32 five-bit codes.
    fn fixed_distances() -> Huffman {
        Huffman::new(&[5u8; 32]).expect("fixed table is valid")
    }
}

/// Where the decoder is between `fill` calls. A match copy never spans
/// states (≤ 258 bytes, appended whole), so this is all the resume state.
enum BlockState {
    /// Expecting a gzip member header (start of stream, or after a
    /// member's trailer when the input continues).
    Header,
    /// Expecting the next DEFLATE block header inside a member.
    BlockHeader { last_seen: bool },
    /// Inside a stored block with `remaining` raw bytes to copy.
    Stored { remaining: usize, last: bool },
    /// Inside a Huffman-coded block.
    Coded {
        lit: Huffman,
        dist: Huffman,
        last: bool,
    },
    /// All members decoded; the underlying stream is exhausted.
    Done,
}

/// A streaming gzip decoder: reads compressed bytes from `R`, serves
/// decompressed bytes through [`Read`]. Fixed-size internal state — the
/// 32 KiB DEFLATE window, an 8 KiB input buffer and a ≤ 32 KiB pending
/// buffer — regardless of how large the compressed stream is.
pub struct GzDecoder<R: Read> {
    src: R,
    /// Raw input buffer (compressed bytes).
    inbuf: Vec<u8>,
    inpos: usize,
    inlen: usize,
    src_eof: bool,
    /// Bit accumulator over `inbuf` (LSB-first per RFC 1951).
    bitbuf: u32,
    bitcnt: u32,
    /// History ring for back-references.
    ring: Box<[u8]>,
    rpos: usize,
    rlen: usize,
    /// Decoded bytes not yet served to the caller.
    pending: Vec<u8>,
    served: usize,
    state: BlockState,
    /// CRC/length of the current member's decoded output, for the trailer.
    crc: u32,
    crc_table: [u32; 256],
    member_len: u32,
    /// Whether at least one member has been fully decoded (a following
    /// clean EOF is then a valid end of stream, not truncation).
    member_done: bool,
    /// Total decompressed bytes served (all members).
    total_out: u64,
}

impl<R: Read> GzDecoder<R> {
    pub fn new(src: R) -> GzDecoder<R> {
        GzDecoder {
            src,
            inbuf: vec![0; IN_CHUNK],
            inpos: 0,
            inlen: 0,
            src_eof: false,
            bitbuf: 0,
            bitcnt: 0,
            ring: vec![0; WINDOW].into_boxed_slice(),
            rpos: 0,
            rlen: 0,
            pending: Vec::with_capacity(PENDING_TARGET + 258),
            served: 0,
            state: BlockState::Header,
            crc: 0xFFFF_FFFF,
            crc_table: crc_table(),
            member_len: 0,
            member_done: false,
            total_out: 0,
        }
    }

    /// Total decompressed bytes produced so far.
    pub fn total_out(&self) -> u64 {
        self.total_out
    }

    fn next_input_byte(&mut self) -> io::Result<Option<u8>> {
        if self.inpos == self.inlen {
            if self.src_eof {
                return Ok(None);
            }
            self.inpos = 0;
            self.inlen = 0;
            let n = self.src.read(&mut self.inbuf)?;
            if n == 0 {
                self.src_eof = true;
                return Ok(None);
            }
            self.inlen = n;
        }
        let b = self.inbuf[self.inpos];
        self.inpos += 1;
        Ok(Some(b))
    }

    fn need_input_byte(&mut self, what: &str) -> io::Result<u8> {
        self.next_input_byte()?.ok_or_else(|| eof(what))
    }

    /// `n` bits, LSB-first (header fields, extra bits). `n ≤ 16`.
    fn bits(&mut self, n: u32) -> io::Result<u32> {
        while self.bitcnt < n {
            let b = self.need_input_byte("inside a DEFLATE block")?;
            self.bitbuf |= (b as u32) << self.bitcnt;
            self.bitcnt += 8;
        }
        let v = self.bitbuf & ((1u32 << n) - 1);
        self.bitbuf >>= n;
        self.bitcnt -= n;
        Ok(v)
    }

    /// Decodes one Huffman symbol (bits are consumed MSB-of-code first).
    fn decode(&mut self, table: &Huffman) -> io::Result<u16> {
        let mut code = 0u32;
        let mut first = 0u32;
        let mut index = 0u32;
        for len in 1..=15 {
            code |= self.bits(1)?;
            let count = table.counts[len] as u32;
            if code < first + count {
                return Ok(table.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(bad("invalid Huffman code"))
    }

    /// Appends one decoded byte to pending, the ring and the member CRC.
    fn put(&mut self, b: u8) {
        self.pending.push(b);
        self.ring[self.rpos] = b;
        self.rpos = (self.rpos + 1) & (WINDOW - 1);
        self.rlen = (self.rlen + 1).min(WINDOW);
        self.crc = self.crc_table[((self.crc ^ b as u32) & 0xFF) as usize] ^ (self.crc >> 8);
        self.member_len = self.member_len.wrapping_add(1);
    }

    /// Parses a gzip member header. Returns `false` at clean end of input
    /// (no further member).
    fn read_header(&mut self, first_member: bool) -> io::Result<bool> {
        let m1 = match self.next_input_byte()? {
            Some(b) => b,
            None if !first_member => return Ok(false),
            None => return Err(eof("empty input")),
        };
        let m2 = self.need_input_byte("in the member header")?;
        if m1 != 0x1F || m2 != 0x8B {
            return Err(bad("bad magic number (not a gzip stream)"));
        }
        let method = self.need_input_byte("in the member header")?;
        if method != 8 {
            return Err(bad("unsupported compression method (not DEFLATE)"));
        }
        let flags = self.need_input_byte("in the member header")?;
        if flags & 0xE0 != 0 {
            return Err(bad("reserved header flag set"));
        }
        for _ in 0..6 {
            // MTIME, XFL, OS — ignored.
            self.need_input_byte("in the member header")?;
        }
        if flags & 0x04 != 0 {
            // FEXTRA: little-endian length, then that many bytes.
            let lo = self.need_input_byte("in the FEXTRA field")? as usize;
            let hi = self.need_input_byte("in the FEXTRA field")? as usize;
            for _ in 0..(hi << 8 | lo) {
                self.need_input_byte("in the FEXTRA field")?;
            }
        }
        if flags & 0x08 != 0 {
            while self.need_input_byte("in the FNAME field")? != 0 {}
        }
        if flags & 0x10 != 0 {
            while self.need_input_byte("in the FCOMMENT field")? != 0 {}
        }
        if flags & 0x02 != 0 {
            // FHCRC: header CRC16, not verified.
            self.need_input_byte("in the FHCRC field")?;
            self.need_input_byte("in the FHCRC field")?;
        }
        self.crc = 0xFFFF_FFFF;
        self.member_len = 0;
        Ok(true)
    }

    /// Verifies the member trailer against the running CRC and length.
    fn read_trailer(&mut self) -> io::Result<()> {
        // The trailer is byte-aligned.
        self.bitbuf = 0;
        self.bitcnt = 0;
        let mut crc = 0u32;
        for i in 0..4 {
            crc |= (self.need_input_byte("in the member trailer")? as u32) << (8 * i);
        }
        let mut isize = 0u32;
        for i in 0..4 {
            isize |= (self.need_input_byte("in the member trailer")? as u32) << (8 * i);
        }
        if crc != self.crc ^ 0xFFFF_FFFF {
            return Err(bad("CRC32 mismatch"));
        }
        if isize != self.member_len {
            return Err(bad("decompressed length mismatch (ISIZE)"));
        }
        self.member_done = true;
        Ok(())
    }

    /// Reads the code-length-coded literal/distance tables of a dynamic
    /// block (RFC 1951 §3.2.7).
    fn read_dynamic_tables(&mut self) -> io::Result<(Huffman, Huffman)> {
        let hlit = self.bits(5)? as usize + 257;
        let hdist = self.bits(5)? as usize + 1;
        let hclen = self.bits(4)? as usize + 4;
        if hlit > 286 || hdist > 30 {
            return Err(bad("too many literal/distance codes"));
        }
        let mut clen_lengths = [0u8; 19];
        for &pos in CLEN_ORDER.iter().take(hclen) {
            clen_lengths[pos] = self.bits(3)? as u8;
        }
        let clen = Huffman::new(&clen_lengths)?;
        let mut lengths = vec![0u8; hlit + hdist];
        let mut i = 0;
        while i < lengths.len() {
            let sym = self.decode(&clen)?;
            match sym {
                0..=15 => {
                    lengths[i] = sym as u8;
                    i += 1;
                }
                16 => {
                    if i == 0 {
                        return Err(bad("repeat with no previous code length"));
                    }
                    let prev = lengths[i - 1];
                    let n = 3 + self.bits(2)? as usize;
                    if i + n > lengths.len() {
                        return Err(bad("code-length repeat overflows the table"));
                    }
                    for _ in 0..n {
                        lengths[i] = prev;
                        i += 1;
                    }
                }
                17 | 18 => {
                    let n = if sym == 17 {
                        3 + self.bits(3)? as usize
                    } else {
                        11 + self.bits(7)? as usize
                    };
                    if i + n > lengths.len() {
                        return Err(bad("code-length repeat overflows the table"));
                    }
                    i += n; // already zero
                }
                _ => return Err(bad("invalid code-length symbol")),
            }
        }
        if lengths[256] == 0 {
            return Err(bad("no end-of-block code"));
        }
        let lit = Huffman::new(&lengths[..hlit])?;
        let dist = Huffman::new(&lengths[hlit..])?;
        Ok((lit, dist))
    }

    /// Copies a `len`-byte match ending `dist` bytes back in the ring.
    fn copy_match(&mut self, len: usize, dist: usize) -> io::Result<()> {
        if dist == 0 || dist > self.rlen {
            return Err(bad("match distance exceeds decoded history"));
        }
        let mut p = (self.rpos + WINDOW - dist) & (WINDOW - 1);
        for _ in 0..len {
            // Byte-at-a-time on purpose: overlapping matches (dist < len)
            // must observe the bytes this very copy appends.
            let b = self.ring[p];
            p = (p + 1) & (WINDOW - 1);
            self.put(b);
        }
        Ok(())
    }

    /// Decodes until at least one pending byte exists or the stream ends.
    fn fill(&mut self) -> io::Result<()> {
        loop {
            if self.pending.len() > self.served || matches!(self.state, BlockState::Done) {
                return Ok(());
            }
            match std::mem::replace(&mut self.state, BlockState::Done) {
                BlockState::Done => return Ok(()),
                BlockState::Header => {
                    if self.read_header(!self.member_done)? {
                        self.state = BlockState::BlockHeader { last_seen: false };
                    } else {
                        self.state = BlockState::Done;
                    }
                }
                BlockState::BlockHeader { last_seen } => {
                    if last_seen {
                        self.read_trailer()?;
                        self.state = BlockState::Header;
                        continue;
                    }
                    let last = self.bits(1)? == 1;
                    match self.bits(2)? {
                        0 => {
                            // Stored: align, then LEN/NLEN.
                            self.bitbuf = 0;
                            self.bitcnt = 0;
                            let len = self.need_input_byte("in a stored block header")? as usize
                                | (self.need_input_byte("in a stored block header")? as usize) << 8;
                            let nlen = self.need_input_byte("in a stored block header")? as usize
                                | (self.need_input_byte("in a stored block header")? as usize) << 8;
                            if len != !nlen & 0xFFFF {
                                return Err(bad("stored block length check failed"));
                            }
                            self.state = BlockState::Stored {
                                remaining: len,
                                last,
                            };
                        }
                        1 => {
                            self.state = BlockState::Coded {
                                lit: Huffman::fixed_literals(),
                                dist: Huffman::fixed_distances(),
                                last,
                            };
                        }
                        2 => {
                            let (lit, dist) = self.read_dynamic_tables()?;
                            self.state = BlockState::Coded { lit, dist, last };
                        }
                        _ => return Err(bad("invalid block type")),
                    }
                }
                BlockState::Stored {
                    mut remaining,
                    last,
                } => {
                    while remaining > 0 && self.pending.len() < PENDING_TARGET {
                        let b = self.need_input_byte("inside a stored block")?;
                        self.put(b);
                        remaining -= 1;
                    }
                    self.state = if remaining > 0 {
                        BlockState::Stored { remaining, last }
                    } else {
                        BlockState::BlockHeader { last_seen: last }
                    };
                }
                BlockState::Coded { lit, dist, last } => {
                    let mut ended = false;
                    while self.pending.len() < PENDING_TARGET {
                        let sym = self.decode(&lit)?;
                        match sym {
                            0..=255 => self.put(sym as u8),
                            256 => {
                                ended = true;
                                break;
                            }
                            257..=285 => {
                                let idx = sym as usize - 257;
                                let len = LEN_BASE[idx] as usize
                                    + self.bits(LEN_EXTRA[idx] as u32)? as usize;
                                let dsym = self.decode(&dist)? as usize;
                                if dsym >= 30 {
                                    return Err(bad("invalid distance symbol"));
                                }
                                let d = DIST_BASE[dsym] as usize
                                    + self.bits(DIST_EXTRA[dsym] as u32)? as usize;
                                self.copy_match(len, d)?;
                            }
                            _ => return Err(bad("invalid literal/length symbol")),
                        }
                    }
                    self.state = if ended {
                        BlockState::BlockHeader { last_seen: last }
                    } else {
                        BlockState::Coded { lit, dist, last }
                    };
                }
            }
        }
    }
}

impl<R: Read> Read for GzDecoder<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.served == self.pending.len() {
            self.pending.clear();
            self.served = 0;
            self.fill()?;
            if self.pending.is_empty() {
                return Ok(0); // clean EOF
            }
        }
        let n = (self.pending.len() - self.served).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.served..self.served + n]);
        self.served += n;
        self.total_out += n as u64;
        Ok(n)
    }
}

/// Decompresses a whole in-memory gzip stream (tests and small inputs).
pub fn gzip_decompress(bytes: &[u8]) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    GzDecoder::new(bytes).read_to_end(&mut out)?;
    Ok(out)
}

/// Compresses `data` into a valid single-member gzip stream using only
/// *stored* DEFLATE blocks (no compression — every decoder accepts it).
/// The encoder half of the vendored pair, used by tests and generators.
pub fn gzip_compress_stored(data: &[u8]) -> Vec<u8> {
    let table = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^= 0xFFFF_FFFF;
    // Header: magic, DEFLATE, no flags, zero mtime, no XFL, unknown OS.
    let mut out = vec![0x1F, 0x8B, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xFF];
    let mut chunks = data.chunks(0xFFFF).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]); // final empty stored block
    }
    while let Some(chunk) = chunks.next() {
        out.push(if chunks.peek().is_none() { 0x01 } else { 0x00 });
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_roundtrip() {
        for payload in [
            b"".as_slice(),
            b"hello world",
            &[0xABu8; 100_000], // several stored blocks
        ] {
            let gz = gzip_compress_stored(payload);
            assert_eq!(gzip_decompress(&gz).unwrap(), payload);
        }
    }

    #[test]
    fn streaming_reads_match_whole_decode() {
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i * 7 + i / 251) as u8).collect();
        let gz = gzip_compress_stored(&payload);
        let mut dec = GzDecoder::new(gz.as_slice());
        let mut out = Vec::new();
        let mut small = [0u8; 97]; // deliberately awkward read size
        loop {
            let n = dec.read(&mut small).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&small[..n]);
        }
        assert_eq!(out, payload);
        assert_eq!(dec.total_out(), payload.len() as u64);
    }

    #[test]
    fn concatenated_members() {
        let mut gz = gzip_compress_stored(b"first ");
        gz.extend_from_slice(&gzip_compress_stored(b"second"));
        assert_eq!(gzip_decompress(&gz).unwrap(), b"first second");
    }

    #[test]
    fn corrupt_crc_rejected() {
        let mut gz = gzip_compress_stored(b"payload");
        let n = gz.len();
        gz[n - 5] ^= 0xFF; // flip a CRC byte
        assert!(gzip_decompress(&gz).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let gz = gzip_compress_stored(b"payload");
        assert!(gzip_decompress(&gz[..gz.len() - 3]).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(gzip_decompress(b"not gzip at all").is_err());
        assert!(gzip_decompress(&[]).is_err());
    }

    /// A fixed-Huffman stream produced by a reference encoder: "abcabcabc"
    /// compressed with a literal run and a back-reference. Hand-assembled:
    /// literals 'a' 'b' 'c', then length=6/dist=3 match, then end-of-block.
    #[test]
    fn fixed_huffman_with_overlapping_match() {
        // Build the bitstream by hand (LSB-first packing).
        let mut bits: Vec<bool> = Vec::new();
        let push_code = |bits: &mut Vec<bool>, code: u32, len: u32| {
            // Huffman codes are written MSB-first.
            for i in (0..len).rev() {
                bits.push((code >> i) & 1 == 1);
            }
        };
        bits.push(true); // BFINAL
        bits.push(true); // BTYPE = 01 (fixed), LSB first: bit 0 ...
        bits.push(false); // ... then bit 1
                          // Fixed codes: literals 0..=143 are 8 bits, 0x30 + lit.
        for lit in [b'a', b'b', b'c'] {
            push_code(&mut bits, 0x30 + lit as u32, 8);
        }
        // Length 6 => symbol 260 (base 6, no extra); codes 256..=279 are
        // 7 bits valued symbol-256.
        push_code(&mut bits, 260 - 256, 7);
        // Distance 3 => symbol 2, 5 bits, no extra.
        push_code(&mut bits, 2, 5);
        // End of block: symbol 256, 7-bit code 0.
        push_code(&mut bits, 0, 7);
        let mut deflate = Vec::new();
        for chunk in bits.chunks(8) {
            let mut b = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                if bit {
                    b |= 1 << i;
                }
            }
            deflate.push(b);
        }
        let payload = b"abcabcabc";
        let table = crc_table();
        let mut crc = 0xFFFF_FFFFu32;
        for &b in payload {
            crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        let mut gz = vec![0x1F, 0x8B, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xFF];
        gz.extend_from_slice(&deflate);
        gz.extend_from_slice(&(crc ^ 0xFFFF_FFFF).to_le_bytes());
        gz.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&gz).unwrap(), payload);
    }
}
