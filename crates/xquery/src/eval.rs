//! Reference interpreter: evaluates the XQuery fragment over an in-memory
//! [`Document`].
//!
//! Shared by three consumers with identical semantics:
//! * the DOM baseline engine (whole document materialised),
//! * the projection baseline engine (projected document materialised),
//! * the FluXQuery runtime's buffered execution (`on-first` handler bodies
//!   run over the buffer arena).
//!
//! Comparison semantics are XPath-style *general comparisons*: `A op B`
//! holds iff some pair of items satisfies `op`, numerically when both
//! values parse as numbers, else by string comparison.

use crate::ast::*;
use crate::error::{Result, XQueryError};
use flux_xml::tree::{Document, NodeId, NodeKind};
use flux_xml::{Attribute, XmlWriter};
use std::collections::HashMap;
use std::io::Write;

/// Output receiver for query results.
pub trait QuerySink {
    fn start_element(&mut self, name: &str, attrs: &[Attribute]) -> Result<()>;
    fn end_element(&mut self) -> Result<()>;
    fn text(&mut self, text: &str) -> Result<()>;

    /// Start tag of a buffered element node — the symbol fast path used
    /// when copying stored subtrees out. The default materialises owned
    /// strings through [`QuerySink::start_element`]; sinks that can
    /// resolve names straight from the document's table (the XML writer)
    /// override it to allocate nothing.
    fn start_element_node(&mut self, doc: &Document, id: NodeId) -> Result<()> {
        let attrs: Vec<Attribute> = doc
            .attributes(id)
            .iter()
            .map(|a| Attribute::new(doc.symbols().name(a.name), a.value.clone()))
            .collect();
        let name = doc
            .name(id)
            .ok_or_else(|| XQueryError::eval("start_element_node on a non-element node"))?;
        self.start_element(name, &attrs)
    }
}

impl<W: Write> QuerySink for XmlWriter<W> {
    fn start_element(&mut self, name: &str, attrs: &[Attribute]) -> Result<()> {
        XmlWriter::start_element(self, name, attrs)
            .map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }

    fn end_element(&mut self) -> Result<()> {
        XmlWriter::end_element(self).map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }

    fn text(&mut self, text: &str) -> Result<()> {
        XmlWriter::text(self, text).map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }

    fn start_element_node(&mut self, doc: &Document, id: NodeId) -> Result<()> {
        XmlWriter::start_element_node(self, doc, id)
            .map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }
}

/// A sink that counts output bytes without storing them (benchmarks).
#[derive(Debug, Default)]
pub struct CountingSink {
    pub bytes: u64,
    pub events: u64,
    depth: usize,
}

impl CountingSink {
    /// The serialized-size model shared by both start paths: 2 bytes of
    /// tag punctuation, 4 per attribute (space, `=`, both quotes).
    fn count_start_tag(
        &mut self,
        name_len: usize,
        attr_lens: impl Iterator<Item = (usize, usize)>,
    ) {
        self.bytes += 2 + name_len as u64;
        for (name, value) in attr_lens {
            self.bytes += 4 + name as u64 + value as u64;
        }
        self.events += 1;
        self.depth += 1;
    }
}

impl QuerySink for CountingSink {
    fn start_element(&mut self, name: &str, attrs: &[Attribute]) -> Result<()> {
        self.count_start_tag(
            name.len(),
            attrs.iter().map(|a| (a.name.len(), a.value.len())),
        );
        Ok(())
    }

    fn end_element(&mut self) -> Result<()> {
        if self.depth == 0 {
            return Err(XQueryError::eval("unbalanced end element in output"));
        }
        self.depth -= 1;
        self.bytes += 3;
        self.events += 1;
        Ok(())
    }

    fn text(&mut self, text: &str) -> Result<()> {
        self.bytes += text.len() as u64;
        self.events += 1;
        Ok(())
    }

    fn start_element_node(&mut self, doc: &Document, id: NodeId) -> Result<()> {
        // Count through the symbol table without materialising anything.
        let name = doc
            .name(id)
            .ok_or_else(|| XQueryError::eval("start_element_node on a non-element node"))?;
        self.count_start_tag(
            name.len(),
            doc.attributes(id)
                .iter()
                .map(|a| (doc.symbols().name(a.name).len(), a.value.len())),
        );
        Ok(())
    }
}

/// Variable bindings: every variable is bound to a single node.
pub type Env = HashMap<VarName, NodeId>;

/// One item of an evaluated sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Node(NodeId),
    Str(String),
}

/// Evaluator over one document arena.
pub struct TreeEvaluator<'d> {
    doc: &'d Document,
}

impl<'d> TreeEvaluator<'d> {
    pub fn new(doc: &'d Document) -> Self {
        TreeEvaluator { doc }
    }

    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Evaluates `expr` under `env`, emitting results to `sink`.
    pub fn eval(&self, expr: &Expr, env: &mut Env, sink: &mut impl QuerySink) -> Result<()> {
        match expr {
            Expr::Empty => Ok(()),
            Expr::StringLit(s) => sink.text(s),
            Expr::Var(v) => {
                let node = self.bound(env, v)?;
                self.copy_node(node, sink)
            }
            Expr::Path(p) => {
                for item in self.resolve_items(p, env)? {
                    match item {
                        Item::Node(n) => self.copy_node(n, sink)?,
                        Item::Str(s) => sink.text(&s)?,
                    }
                }
                Ok(())
            }
            Expr::Sequence(items) => {
                for item in items {
                    self.eval(item, env, sink)?;
                }
                Ok(())
            }
            Expr::Element {
                name,
                attributes,
                content,
            } => {
                let mut attrs = Vec::with_capacity(attributes.len());
                for attr in attributes {
                    attrs.push(Attribute::new(
                        attr.name.clone(),
                        self.eval_attr_template(&attr.value, env)?,
                    ));
                }
                sink.start_element(name, &attrs)?;
                self.eval(content, env, sink)?;
                sink.end_element()
            }
            Expr::For {
                var,
                source,
                where_clause,
                body,
            } => {
                let nodes = self.resolve_nodes(source, env)?;
                for node in nodes {
                    let shadowed = env.insert(var.clone(), node);
                    let keep = match where_clause {
                        Some(cond) => self.eval_cond(cond, env)?,
                        None => true,
                    };
                    if keep {
                        self.eval(body, env, sink)?;
                    }
                    match shadowed {
                        Some(old) => {
                            env.insert(var.clone(), old);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                }
                Ok(())
            }
            Expr::Let { .. } => Err(XQueryError::eval(
                "let must be inlined by normalization before evaluation",
            )),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_cond(cond, env)? {
                    self.eval(then_branch, env, sink)
                } else {
                    self.eval(else_branch, env, sink)
                }
            }
        }
    }

    fn bound(&self, env: &Env, var: &str) -> Result<NodeId> {
        env.get(var)
            .copied()
            .ok_or_else(|| XQueryError::eval(format!("unbound variable `${var}`")))
    }

    /// Resolves an element path to nodes in document order.
    pub fn resolve_nodes(&self, path: &Path, env: &Env) -> Result<Vec<NodeId>> {
        let mut current = vec![self.bound(env, &path.start)?];
        for step in &path.steps {
            match step {
                Step::Child(name) => {
                    let mut next = Vec::new();
                    for node in current {
                        next.extend(self.doc.children_named(node, name));
                    }
                    current = next;
                }
                Step::Attribute(_) | Step::Text => {
                    return Err(XQueryError::eval(format!(
                        "path {path} used where element nodes are required"
                    )))
                }
            }
        }
        Ok(current)
    }

    /// Resolves any path to items (nodes, attribute strings, text pieces).
    pub fn resolve_items(&self, path: &Path, env: &Env) -> Result<Vec<Item>> {
        let (element_steps, tail) = match path.steps.last() {
            Some(Step::Attribute(_)) | Some(Step::Text) => {
                (&path.steps[..path.steps.len() - 1], path.steps.last())
            }
            _ => (&path.steps[..], None),
        };
        let mut current = vec![self.bound(env, &path.start)?];
        for step in element_steps {
            let Step::Child(name) = step else {
                return Err(XQueryError::eval(format!(
                    "non-final attribute/text step in {path}"
                )));
            };
            let mut next = Vec::new();
            for node in current {
                next.extend(self.doc.children_named(node, name));
            }
            current = next;
        }
        match tail {
            None => Ok(current.into_iter().map(Item::Node).collect()),
            Some(Step::Attribute(name)) => Ok(current
                .into_iter()
                .filter_map(|n| {
                    self.doc
                        .attribute(n, name)
                        .map(|v| Item::Str(v.to_string()))
                })
                .collect()),
            Some(Step::Text) => {
                let mut items = Vec::new();
                for node in current {
                    for &child in self.doc.children(node) {
                        if let NodeKind::Text(t) = self.doc.kind(child) {
                            items.push(Item::Str(t.clone()));
                        }
                    }
                }
                Ok(items)
            }
            Some(Step::Child(_)) => unreachable!("handled above"),
        }
    }

    /// Copies a node's subtree to the sink. Element start tags go through
    /// the sink's symbol fast path — no name strings materialise.
    pub fn copy_node(&self, node: NodeId, sink: &mut impl QuerySink) -> Result<()> {
        match self.doc.kind(node) {
            NodeKind::Document => {
                for &c in self.doc.children(node) {
                    self.copy_node(c, sink)?;
                }
                Ok(())
            }
            NodeKind::Element { .. } => {
                sink.start_element_node(self.doc, node)?;
                for &c in self.doc.children(node) {
                    self.copy_node(c, sink)?;
                }
                sink.end_element()
            }
            NodeKind::Text(t) => sink.text(t),
        }
    }

    /// Evaluates an attribute value template to its string value (multiple
    /// items joined with single spaces, per XQuery attribute semantics).
    pub fn eval_attr_template(&self, parts: &[AttrPart], env: &mut Env) -> Result<String> {
        let mut out = String::new();
        for part in parts {
            match part {
                AttrPart::Literal(t) => out.push_str(t),
                AttrPart::Expr(e) => {
                    let values = self.atomize(e, env)?;
                    for (i, v) in values.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        out.push_str(v);
                    }
                }
            }
        }
        Ok(out)
    }

    /// String values of an atomizable expression (paths, strings, vars).
    fn atomize(&self, expr: &Expr, env: &Env) -> Result<Vec<String>> {
        match expr {
            Expr::Empty => Ok(vec![]),
            Expr::StringLit(s) => Ok(vec![s.clone()]),
            Expr::Var(v) => {
                let node = self.bound(env, v)?;
                Ok(vec![self.doc.string_value(node)])
            }
            Expr::Path(p) => Ok(self
                .resolve_items(p, env)?
                .into_iter()
                .map(|item| match item {
                    Item::Node(n) => self.doc.string_value(n),
                    Item::Str(s) => s,
                })
                .collect()),
            Expr::Sequence(items) => {
                let mut out = Vec::new();
                for item in items {
                    out.extend(self.atomize(item, env)?);
                }
                Ok(out)
            }
            other => Err(XQueryError::eval(format!(
                "expression cannot be atomized: {other:?}"
            ))),
        }
    }

    /// Evaluates a condition to a boolean.
    pub fn eval_cond(&self, cond: &Cond, env: &Env) -> Result<bool> {
        match cond {
            Cond::True => Ok(true),
            Cond::False => Ok(false),
            Cond::And(a, b) => Ok(self.eval_cond(a, env)? && self.eval_cond(b, env)?),
            Cond::Or(a, b) => Ok(self.eval_cond(a, env)? || self.eval_cond(b, env)?),
            Cond::Not(c) => Ok(!self.eval_cond(c, env)?),
            Cond::Exists(p) => Ok(!self.resolve_items(p, env)?.is_empty()),
            Cond::Empty(p) => Ok(self.resolve_items(p, env)?.is_empty()),
            Cond::Cmp { lhs, op, rhs } => {
                let left = self.operand_values(lhs, env)?;
                let right = self.operand_values(rhs, env)?;
                Ok(left
                    .iter()
                    .any(|a| right.iter().any(|b| compare(a, b, *op))))
            }
        }
    }

    fn operand_values(&self, op: &Operand, env: &Env) -> Result<Vec<String>> {
        match op {
            Operand::StringLit(s) => Ok(vec![s.clone()]),
            Operand::NumberLit(n) => Ok(vec![n.clone()]),
            Operand::Path(p) => {
                if p.steps.is_empty() {
                    let node = self.bound(env, &p.start)?;
                    return Ok(vec![self.doc.string_value(node)]);
                }
                Ok(self
                    .resolve_items(p, env)?
                    .into_iter()
                    .map(|item| match item {
                        Item::Node(n) => self.doc.string_value(n),
                        Item::Str(s) => s,
                    })
                    .collect())
            }
        }
    }
}

/// General-comparison of two string values: numeric when both sides parse
/// as numbers, string comparison otherwise.
pub fn compare(a: &str, b: &str, op: CmpOp) -> bool {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        _ => match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        },
    }
}

/// Convenience for tests and baselines: evaluates `query` (already parsed)
/// against a document, binding `$ROOT` to the document node, and returns
/// the serialized output.
pub fn eval_to_string(doc: &Document, expr: &Expr) -> Result<String> {
    let evaluator = TreeEvaluator::new(doc);
    let mut env = Env::new();
    env.insert(ROOT_VAR.to_string(), doc.document_node());
    let mut writer = XmlWriter::new(Vec::new());
    evaluator.eval(expr, &mut env, &mut writer)?;
    writer
        .finish()
        .map_err(|e| XQueryError::eval(format!("output error: {e}")))?;
    String::from_utf8(writer.into_inner()).map_err(|_| XQueryError::eval("invalid UTF-8 output"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parser::parse_query;

    const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP</title><author>Stevens</author><author>Wright</author><publisher>AW</publisher><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author>Abiteboul</author><publisher>MK</publisher><price>39.95</price></book></bib>"#;

    fn run(query: &str, doc_text: &str) -> String {
        let doc = Document::parse_str(doc_text).unwrap();
        let expr = parse_query(query).unwrap();
        eval_to_string(&doc, &expr).unwrap()
    }

    fn run_normalized(query: &str, doc_text: &str) -> String {
        let doc = Document::parse_str(doc_text).unwrap();
        let expr = normalize(&parse_query(query).unwrap()).unwrap();
        eval_to_string(&doc, &expr).unwrap()
    }

    #[test]
    fn q3_direct() {
        let out = run(
            r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#,
            BIB,
        );
        assert_eq!(
            out,
            "<results><result><title>TCP/IP</title><author>Stevens</author><author>Wright</author></result><result><title>Data on the Web</title><author>Abiteboul</author></result></results>"
        );
    }

    #[test]
    fn normalized_equals_direct() {
        let q = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;
        assert_eq!(run(q, BIB), run_normalized(q, BIB));
    }

    #[test]
    fn where_filtering() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/publisher = "AW" return $b/title }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><title>TCP/IP</title></r>");
    }

    #[test]
    fn numeric_comparison_on_attribute() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/@year > 1994 return $b/title }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><title>Data on the Web</title></r>");
    }

    #[test]
    fn numeric_vs_string_comparison() {
        // 65.95 < 100 numerically (string comparison would say otherwise).
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/price < 100 return $b/title }</r>"#,
            BIB,
        );
        assert!(out.contains("TCP/IP") && out.contains("Data on the Web"));
    }

    #[test]
    fn existential_comparison_any_pair() {
        // Second author matches even though the first doesn't.
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/author = "Wright" return $b/title }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><title>TCP/IP</title></r>");
    }

    #[test]
    fn attribute_output() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return <y>{$b/@year}</y> }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><y>1994</y><y>2000</y></r>");
    }

    #[test]
    fn attribute_value_template() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return <book y="{$b/@year}-ed"/> }</r>"#,
            BIB,
        );
        assert_eq!(
            out,
            r#"<r><book y="1994-ed"></book><book y="2000-ed"></book></r>"#
        );
    }

    #[test]
    fn text_step() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return <t>{$b/title/text()}</t> }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><t>TCP/IP</t><t>Data on the Web</t></r>");
    }

    #[test]
    fn whole_variable_copy() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/@year = 2000 return $b }</r>"#,
            BIB,
        );
        assert!(out.contains(r#"<book year="2000">"#));
        assert!(out.contains("<publisher>MK</publisher>"));
    }

    #[test]
    fn if_else_branches() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return if ($b/author = "Stevens") then <s/> else <o/> }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><s></s><o></o></r>");
    }

    #[test]
    fn exists_and_empty() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return if (exists($b/editor)) then <e/> else if (empty($b/editor)) then <n/> else () }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><n></n><n></n></r>");
    }

    #[test]
    fn join_across_branches() {
        let doc = r#"<top><bib><book><title>A</title></book><book><title>B</title></book></bib><reviews><entry><title>B</title><rating>5</rating></entry></reviews></top>"#;
        let out = run(
            r#"<out>{ for $b in $ROOT/top/bib/book, $e in $ROOT/top/reviews/entry where $b/title = $e/title return <hit>{$b/title}{$e/rating}</hit> }</out>"#,
            doc,
        );
        assert_eq!(
            out,
            "<out><hit><title>B</title><rating>5</rating></hit></out>"
        );
    }

    #[test]
    fn unbound_variable_is_error() {
        let doc = Document::parse_str("<a/>").unwrap();
        let expr = parse_query("<r>{$nope/x}</r>").unwrap();
        assert!(eval_to_string(&doc, &expr).is_err());
    }

    #[test]
    fn counting_sink_counts() {
        let doc = Document::parse_str(BIB).unwrap();
        let expr = parse_query(r#"<r>{ for $b in $ROOT/bib/book return $b/title }</r>"#).unwrap();
        let evaluator = TreeEvaluator::new(&doc);
        let mut env = Env::new();
        env.insert(ROOT_VAR.to_string(), doc.document_node());
        let mut sink = CountingSink::default();
        evaluator.eval(&expr, &mut env, &mut sink).unwrap();
        assert!(sink.bytes > 0);
        assert!(sink.events >= 6);
    }

    #[test]
    fn compare_function_directly() {
        assert!(compare("10", "9", CmpOp::Gt), "numeric comparison");
        assert!(!compare("10", "9", CmpOp::Lt));
        assert!(compare("abc", "abd", CmpOp::Lt), "string comparison");
        assert!(compare("1.5", "1.50", CmpOp::Eq), "numeric equality");
        assert!(!compare("1.5x", "1.50", CmpOp::Eq), "falls back to string");
    }
}
