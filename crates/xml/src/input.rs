//! Unified ingestion entry point: every engine consumes an [`Input`].
//!
//! [`Input`] is a builder over pluggable byte sources — an owned buffer
//! ([`Input::from_bytes`]), an arbitrary reader such as a socket or stdin
//! ([`Input::from_reader`]), or a file path with transparent `.gz`
//! detection ([`Input::from_path`]) — plus the ingestion knobs that used
//! to be scattered across ad-hoc `R: Read` / `&[u8]` parameters: the
//! scanner window size and an optional [`MemoryBudget`].
//!
//! The buffer/reader split is deliberately preserved at resolution time
//! ([`Input::into_source`]): engines that can exploit a fully-buffered
//! document (the zero-copy sharded path) match on [`ResolvedInput::Bytes`],
//! while true streams resolve to [`ResolvedInput::Reader`] and are never
//! materialised.
//!
//! [`MemoryBudget`] is the enforcement half of the paper's O(window +
//! buffer) claim: scanner windows, in-flight shard tapes and streamed
//! chunks charge against it through RAII [`BudgetCharge`] guards, runtime
//! buffer peaks are folded in post-run, and the engine fails the run if
//! the tracked peak ever exceeded the configured limit.

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default scanner window size in bytes, used when an [`Input`] (or a
/// `ReaderConfig`) does not override it.
pub const DEFAULT_WINDOW: usize = 8 * 1024;

/// Smallest accepted scanner window. Windows below this would thrash the
/// refill path without saving measurable memory.
pub const MIN_WINDOW: usize = 64;

const GZIP_MAGIC: [u8; 2] = [0x1f, 0x8b];

// ---------------------------------------------------------------------------
// Memory budget
// ---------------------------------------------------------------------------

/// What a [`BudgetCharge`] accounts for. Each kind tracks its own peak so
/// budget-exceeded errors say *which* pool grew, not just that one did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Scanner window buffers (one per live reader).
    Window,
    /// In-flight shard tape segments (parsed, not yet replayed).
    Tape,
    /// Streamed input chunks in flight between dispatcher and workers.
    Chunk,
    /// Runtime evaluation buffers (`peak_buffer_bytes`, recorded post-run).
    Buffer,
}

impl BudgetKind {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            BudgetKind::Window => 0,
            BudgetKind::Tape => 1,
            BudgetKind::Chunk => 2,
            BudgetKind::Buffer => 3,
        }
    }

    /// Short lower-case label for reports and error messages.
    pub fn name(self) -> &'static str {
        match self {
            BudgetKind::Window => "window",
            BudgetKind::Tape => "tape",
            BudgetKind::Chunk => "chunk",
            BudgetKind::Buffer => "buffer",
        }
    }

    /// Every pool, in index order.
    pub fn all() -> [BudgetKind; Self::COUNT] {
        [
            BudgetKind::Window,
            BudgetKind::Tape,
            BudgetKind::Chunk,
            BudgetKind::Buffer,
        ]
    }
}

/// Thread-safe accounting of the memory pools the streaming pipeline is
/// allowed to grow: scanner windows, in-flight shard tapes, streamed
/// chunks and runtime buffers. Shared as `Arc<MemoryBudget>` between the
/// engine, every scanner and every shard worker.
///
/// Charging never blocks and never fails — the budget observes peaks and
/// the *engine* enforces the limit after the run (a mid-parse abort would
/// turn a memory observation into a data-dependent parse error). The
/// `slow` suite additionally asserts live peaks during multi-GB runs.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: u64,
    current: [AtomicU64; BudgetKind::COUNT],
    peak: [AtomicU64; BudgetKind::COUNT],
    current_total: AtomicU64,
    peak_total: AtomicU64,
}

impl MemoryBudget {
    /// A budget enforcing `limit_bytes` across all tracked pools.
    pub fn new(limit_bytes: u64) -> Arc<Self> {
        Arc::new(MemoryBudget {
            limit: limit_bytes,
            current: Default::default(),
            peak: Default::default(),
            current_total: AtomicU64::new(0),
            peak_total: AtomicU64::new(0),
        })
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Opens an RAII charge of `bytes` against `kind`; the charge is
    /// released when the guard drops. Use [`BudgetCharge::grow_to`] when
    /// the underlying allocation is resized in place.
    pub fn charge(self: &Arc<Self>, kind: BudgetKind, bytes: u64) -> BudgetCharge {
        self.add(kind, bytes);
        BudgetCharge {
            budget: Arc::clone(self),
            kind,
            amount: bytes,
        }
    }

    /// Folds an externally-computed peak (e.g. the runtime's
    /// `peak_buffer_bytes`) into `kind` without opening a live charge.
    pub fn record_peak(&self, kind: BudgetKind, bytes: u64) {
        self.peak[kind.index()].fetch_max(bytes, Ordering::Relaxed);
        // The external peak did not coexist with a live charge of the same
        // kind, but it did coexist with the other pools' charges — fold it
        // into the total peak against the *other* pools' current levels.
        let others: u64 = BudgetKind::all()
            .iter()
            .filter(|k| k.index() != kind.index())
            .map(|k| self.current[k.index()].load(Ordering::Relaxed))
            .sum();
        self.peak_total
            .fetch_max(others.saturating_add(bytes), Ordering::Relaxed);
    }

    fn add(&self, kind: BudgetKind, bytes: u64) {
        let cur = self.current[kind.index()].fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak[kind.index()].fetch_max(cur, Ordering::Relaxed);
        let total = self.current_total.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_total.fetch_max(total, Ordering::Relaxed);
    }

    fn sub(&self, kind: BudgetKind, bytes: u64) {
        self.current[kind.index()].fetch_sub(bytes, Ordering::Relaxed);
        self.current_total.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently charged against `kind`.
    pub fn current(&self, kind: BudgetKind) -> u64 {
        self.current[kind.index()].load(Ordering::Relaxed)
    }

    /// The highest simultaneous charge observed against `kind`.
    pub fn peak(&self, kind: BudgetKind) -> u64 {
        self.peak[kind.index()].load(Ordering::Relaxed)
    }

    /// The highest simultaneous charge observed across all pools.
    pub fn peak_total(&self) -> u64 {
        self.peak_total.load(Ordering::Relaxed)
    }

    /// Whether the tracked peak stayed within the limit; `Err` carries a
    /// per-pool breakdown for the engine's budget-exceeded error.
    pub fn check(&self) -> std::result::Result<(), BudgetExceeded> {
        let peak = self.peak_total();
        if peak <= self.limit {
            return Ok(());
        }
        Err(BudgetExceeded {
            limit: self.limit,
            peak,
            pools: BudgetKind::all().map(|k| (k.name(), self.peak(k))),
        })
    }
}

/// Evidence that a run's tracked memory peak exceeded its [`MemoryBudget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The configured limit in bytes.
    pub limit: u64,
    /// The observed peak across all pools in bytes.
    pub peak: u64,
    /// Per-pool peaks, `(name, bytes)`.
    pub pools: [(&'static str, u64); BudgetKind::COUNT],
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory budget exceeded: peak {} bytes > limit {} bytes (",
            self.peak, self.limit
        )?;
        for (i, (name, bytes)) in self.pools.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} {bytes}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for BudgetExceeded {}

/// RAII guard for bytes charged against a [`MemoryBudget`]. Dropping the
/// guard releases the charge.
#[derive(Debug)]
pub struct BudgetCharge {
    budget: Arc<MemoryBudget>,
    kind: BudgetKind,
    amount: u64,
}

impl BudgetCharge {
    /// Re-sizes the charge to `bytes` (the tracked allocation was grown or
    /// shrunk in place).
    pub fn grow_to(&mut self, bytes: u64) {
        if bytes > self.amount {
            self.budget.add(self.kind, bytes - self.amount);
        } else {
            self.budget.sub(self.kind, self.amount - bytes);
        }
        self.amount = bytes;
    }

    /// The bytes currently held by this charge.
    pub fn amount(&self) -> u64 {
        self.amount
    }
}

impl Drop for BudgetCharge {
    fn drop(&mut self) {
        self.budget.sub(self.kind, self.amount);
    }
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

/// How gzip-compressed input is recognised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GzipMode {
    /// Detect by `.gz` extension (paths) or the `1f 8b` magic (readers and
    /// buffers). XML can never begin with those bytes, so sniffing is safe.
    #[default]
    Auto,
    /// Always decompress, regardless of name or magic.
    Always,
    /// Never decompress; bytes pass through verbatim.
    Never,
}

enum ByteSource {
    Bytes(Arc<Vec<u8>>),
    Reader(Box<dyn Read + Send>),
    Path(PathBuf),
}

impl fmt::Debug for ByteSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByteSource::Bytes(b) => write!(f, "Bytes({} bytes)", b.len()),
            ByteSource::Reader(_) => write!(f, "Reader(..)"),
            ByteSource::Path(p) => write!(f, "Path({})", p.display()),
        }
    }
}

/// A resolved [`Input`]: what an engine actually ingests.
///
/// `Bytes` preserves the zero-copy invariant the buffered sharded path
/// depends on (`Arc<Vec<u8>>` slices shared across workers); `Reader` is a
/// true stream that must be consumed incrementally.
pub enum ResolvedInput {
    /// The whole document is in memory.
    Bytes(Arc<Vec<u8>>),
    /// An unbounded stream; never materialised by the engines.
    Reader(Box<dyn Read + Send>),
}

impl fmt::Debug for ResolvedInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolvedInput::Bytes(b) => write!(f, "Bytes({} bytes)", b.len()),
            ResolvedInput::Reader(_) => write!(f, "Reader(..)"),
        }
    }
}

impl ResolvedInput {
    /// A plain `Read` over the resolved bytes, erasing the buffer/stream
    /// distinction — for consumers without a dedicated buffered path.
    pub fn into_reader(self) -> Box<dyn Read + Send> {
        match self {
            ResolvedInput::Bytes(b) => Box::new(ArcBytesReader { bytes: b, pos: 0 }),
            ResolvedInput::Reader(r) => r,
        }
    }
}

/// `Read` over shared bytes without copying them (unlike
/// `io::Cursor<Vec<u8>>`, keeps the `Arc` alive and clonable elsewhere).
struct ArcBytesReader {
    bytes: Arc<Vec<u8>>,
    pos: usize,
}

impl Read for ArcBytesReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let rest = &self.bytes[self.pos..];
        let n = rest.len().min(buf.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }
}

/// The unified ingestion builder: one type describing *what* to read
/// (bytes, reader or path), *how* (gzip handling, scanner window) and
/// *under which memory contract* ([`MemoryBudget`]).
///
/// ```no_run
/// use flux_xml::input::{Input, MemoryBudget};
///
/// let input = Input::from_path("auction.xml.gz")
///     .window(16 * 1024)
///     .budget(MemoryBudget::new(64 * 1024 * 1024));
/// ```
#[derive(Debug)]
pub struct Input {
    source: ByteSource,
    window: usize,
    gzip: GzipMode,
    budget: Option<Arc<MemoryBudget>>,
}

impl Input {
    fn new(source: ByteSource) -> Self {
        Input {
            source,
            window: DEFAULT_WINDOW,
            gzip: GzipMode::default(),
            budget: None,
        }
    }

    /// Input from a file path. `.gz` files are decompressed transparently
    /// (by extension or magic, see [`GzipMode::Auto`]); the file is opened
    /// lazily at [`Input::into_source`] time.
    pub fn from_path(path: impl AsRef<Path>) -> Self {
        Input::new(ByteSource::Path(path.as_ref().to_path_buf()))
    }

    /// Input from an arbitrary byte stream — a socket, a pipe, stdin, or a
    /// generator. `Send` is required so the sharded pipeline's dispatcher
    /// thread can own the stream; most readers already are.
    pub fn from_reader(reader: impl Read + Send + 'static) -> Self {
        Input::new(ByteSource::Reader(Box::new(reader)))
    }

    /// Input from an in-memory buffer. Engines with a dedicated buffered
    /// path (the zero-copy sharded reader) keep using it for this variant.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Input::new(ByteSource::Bytes(Arc::new(bytes.into())))
    }

    /// Input from an already-shared buffer, without copying it.
    pub fn from_shared_bytes(bytes: Arc<Vec<u8>>) -> Self {
        Input::new(ByteSource::Bytes(bytes))
    }

    /// Sets the scanner window size in bytes (default [`DEFAULT_WINDOW`]).
    /// Values below [`MIN_WINDOW`] are clamped up.
    pub fn window(mut self, bytes: usize) -> Self {
        self.window = bytes.max(MIN_WINDOW);
        self
    }

    /// Sets gzip handling (default [`GzipMode::Auto`]).
    pub fn gzip(mut self, mode: GzipMode) -> Self {
        self.gzip = mode;
        self
    }

    /// Attaches a memory budget. The engine tracks scanner windows,
    /// in-flight tapes/chunks and runtime buffer peaks against it and
    /// fails the run post-hoc if the peak exceeded the limit.
    pub fn budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The configured scanner window size.
    pub fn window_bytes(&self) -> usize {
        self.window
    }

    /// The attached memory budget, if any.
    pub fn memory_budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.budget.as_ref()
    }

    /// Whether this input is an in-memory buffer (and would resolve to
    /// [`ResolvedInput::Bytes`] absent compression).
    pub fn is_buffered(&self) -> bool {
        matches!(self.source, ByteSource::Bytes(_))
    }

    /// Resolves the source: opens the file, applies gzip detection and
    /// wraps compressed sources in a streaming decoder. In-memory inputs
    /// stay [`ResolvedInput::Bytes`] (gzipped buffers are decompressed
    /// back into a buffer so buffered engines keep their zero-copy path).
    pub fn into_source(self) -> io::Result<ResolvedInput> {
        match self.source {
            ByteSource::Bytes(bytes) => {
                let compressed = match self.gzip {
                    GzipMode::Always => true,
                    GzipMode::Never => false,
                    GzipMode::Auto => bytes.len() >= 2 && bytes[..2] == GZIP_MAGIC,
                };
                if compressed {
                    let plain = gunzip_bytes(&bytes)?;
                    Ok(ResolvedInput::Bytes(Arc::new(plain)))
                } else {
                    Ok(ResolvedInput::Bytes(bytes))
                }
            }
            ByteSource::Reader(reader) => resolve_reader(reader, self.gzip),
            ByteSource::Path(path) => {
                let by_ext = path.extension().is_some_and(|e| e == "gz");
                let file = File::open(&path)?;
                match self.gzip {
                    GzipMode::Never => Ok(ResolvedInput::Reader(Box::new(file))),
                    GzipMode::Always => gzip_reader(Box::new(file)),
                    GzipMode::Auto if by_ext => gzip_reader(Box::new(file)),
                    GzipMode::Auto => resolve_reader(Box::new(file), GzipMode::Auto),
                }
            }
        }
    }
}

/// Sniffs the gzip magic off the head of `reader` (for [`GzipMode::Auto`])
/// and wraps accordingly, pushing the sniffed bytes back in front.
fn resolve_reader(mut reader: Box<dyn Read + Send>, mode: GzipMode) -> io::Result<ResolvedInput> {
    match mode {
        GzipMode::Never => return Ok(ResolvedInput::Reader(reader)),
        GzipMode::Always => return gzip_reader(reader),
        GzipMode::Auto => {}
    }
    let mut head = [0u8; 2];
    let mut got = 0;
    while got < 2 {
        match reader.read(&mut head[got..])? {
            0 => break,
            n => got += n,
        }
    }
    let restored: Box<dyn Read + Send> =
        Box::new(io::Cursor::new(head[..got].to_vec()).chain(reader));
    if got == 2 && head == GZIP_MAGIC {
        gzip_reader(restored)
    } else {
        Ok(ResolvedInput::Reader(restored))
    }
}

#[cfg(feature = "gzip")]
fn gzip_reader(reader: Box<dyn Read + Send>) -> io::Result<ResolvedInput> {
    Ok(ResolvedInput::Reader(Box::new(miniflate::GzDecoder::new(
        reader,
    ))))
}

#[cfg(not(feature = "gzip"))]
fn gzip_reader(_reader: Box<dyn Read + Send>) -> io::Result<ResolvedInput> {
    Err(gzip_disabled())
}

#[cfg(feature = "gzip")]
fn gunzip_bytes(bytes: &[u8]) -> io::Result<Vec<u8>> {
    miniflate::gzip_decompress(bytes)
}

#[cfg(not(feature = "gzip"))]
fn gunzip_bytes(_bytes: &[u8]) -> io::Result<Vec<u8>> {
    Err(gzip_disabled())
}

#[cfg(not(feature = "gzip"))]
fn gzip_disabled() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "input looks gzip-compressed, but this build has the `gzip` feature disabled",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_passthrough() {
        let input = Input::from_bytes(b"<doc/>".to_vec());
        assert!(input.is_buffered());
        match input.into_source().unwrap() {
            ResolvedInput::Bytes(b) => assert_eq!(&**b, b"<doc/>"),
            other => panic!("expected bytes, got {other:?}"),
        }
    }

    #[test]
    fn reader_passthrough_sniffs_and_restores_head() {
        let input = Input::from_reader(io::Cursor::new(b"<doc/>".to_vec()));
        let mut out = Vec::new();
        input
            .into_source()
            .unwrap()
            .into_reader()
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"<doc/>");
    }

    #[test]
    fn short_reader_survives_sniff() {
        let input = Input::from_reader(io::Cursor::new(b"x".to_vec()));
        let mut out = Vec::new();
        input
            .into_source()
            .unwrap()
            .into_reader()
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"x");
    }

    #[test]
    fn window_clamps_to_minimum() {
        let input = Input::from_bytes(Vec::new()).window(1);
        assert_eq!(input.window_bytes(), MIN_WINDOW);
    }

    #[cfg(feature = "gzip")]
    #[test]
    fn gz_bytes_decompress_to_bytes() {
        let gz = miniflate::gzip_compress_stored(b"<doc>hi</doc>");
        match Input::from_bytes(gz).into_source().unwrap() {
            ResolvedInput::Bytes(b) => assert_eq!(&**b, b"<doc>hi</doc>"),
            other => panic!("expected bytes, got {other:?}"),
        }
    }

    #[cfg(feature = "gzip")]
    #[test]
    fn gz_reader_decompresses_via_magic_sniff() {
        let gz = miniflate::gzip_compress_stored(b"<doc>stream</doc>");
        let input = Input::from_reader(io::Cursor::new(gz));
        let mut out = Vec::new();
        input
            .into_source()
            .unwrap()
            .into_reader()
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"<doc>stream</doc>");
    }

    #[cfg(feature = "gzip")]
    #[test]
    fn gz_path_decompresses_by_extension() {
        let dir = std::env::temp_dir().join("flux_input_test_gz_ext");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.xml.gz");
        std::fs::write(&path, miniflate::gzip_compress_stored(b"<d/>")).unwrap();
        let mut out = Vec::new();
        Input::from_path(&path)
            .into_source()
            .unwrap()
            .into_reader()
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"<d/>");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gzip_never_passes_magic_through() {
        let mut gz_looking = GZIP_MAGIC.to_vec();
        gz_looking.extend_from_slice(b"not really");
        let input = Input::from_reader(io::Cursor::new(gz_looking.clone())).gzip(GzipMode::Never);
        let mut out = Vec::new();
        input
            .into_source()
            .unwrap()
            .into_reader()
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, gz_looking);
    }

    #[test]
    fn budget_tracks_peaks_and_enforces() {
        let budget = MemoryBudget::new(100);
        {
            let c1 = budget.charge(BudgetKind::Window, 40);
            let mut c2 = budget.charge(BudgetKind::Tape, 30);
            assert_eq!(budget.peak_total(), 70);
            c2.grow_to(50);
            assert_eq!(budget.peak_total(), 90);
            assert_eq!(budget.current(BudgetKind::Tape), 50);
            c2.grow_to(10);
            assert_eq!(budget.current(BudgetKind::Tape), 10);
            drop(c1);
        }
        assert_eq!(budget.current(BudgetKind::Window), 0);
        assert_eq!(budget.current(BudgetKind::Tape), 0);
        assert_eq!(budget.peak(BudgetKind::Window), 40);
        assert_eq!(budget.peak_total(), 90);
        assert!(budget.check().is_ok());
        budget.record_peak(BudgetKind::Buffer, 200);
        let err = budget.check().unwrap_err();
        assert_eq!(err.peak, 200);
        assert_eq!(err.limit, 100);
        assert!(err.to_string().contains("buffer 200"));
    }

    #[test]
    fn record_peak_combines_with_live_charges() {
        let budget = MemoryBudget::new(1000);
        let _c = budget.charge(BudgetKind::Window, 100);
        budget.record_peak(BudgetKind::Buffer, 50);
        assert_eq!(budget.peak_total(), 150);
    }
}
