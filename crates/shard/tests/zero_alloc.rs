//! Steady-state allocation discipline of the sharded replay path.
//!
//! The sharded reader's replay is a zero-copy walk over pre-recorded
//! tapes, so once the workers have delivered their tapes (forced up front
//! here with [`ReplayMode::Joined`], so worker-thread allocations cannot
//! leak into the measured window), the remaining replay must not allocate
//! per event: doubling the document size must not change the allocation
//! count of the post-barrier replay.
//!
//! This file holds exactly one test so no concurrent test in the same
//! binary can perturb the allocation counter.
//!
//! The contract must hold identically under `--features telemetry`: shard
//! lane counters travel inside the (already-allocated) `ShardTape`, the
//! pipeline's lane vector and event journal are preallocated in
//! `start_workers` — before this test's measured window opens — and span
//! reads are `Instant` arithmetic, so the instrumented replay loop stays
//! allocation-free (CI runs this proof in both modes).

// The counting allocator is the one place the crate needs `unsafe`: it
// wraps `System` one-to-one and adds a relaxed atomic increment.
#![allow(unsafe_code)]

use flux_shard::{ReplayMode, ShardConfig, ShardedReader};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn document(books: usize) -> String {
    let mut doc = String::from("<bib>");
    for _ in 0..books {
        doc.push_str(
            "<book year=\"1994\" lang=\"en\"><title>TCP/IP &amp; co <![CDATA[raw <bits>]]></title>\
             <author>Stevens</author><price>65</price></book>",
        );
    }
    doc.push_str("</bib>");
    doc
}

/// Replays `doc` over `shards` joined shards and returns the number of
/// allocations performed *after* the join barrier (every worker done,
/// every tape delivered, the first content event replayed).
fn replay_allocations(doc: &str, shards: usize) -> usize {
    let mut config = ShardConfig::new(shards);
    config.min_shard_bytes = 1;
    config.mode = ReplayMode::Joined;
    let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
    // StartDocument, then the first content pull — which runs the Joined
    // barrier: splits, parses every shard on its worker thread and parks
    // every tape. All parse-side allocation happens here.
    assert!(reader.advance().expect("start document"));
    assert!(reader.advance().expect("first content event"));
    assert_eq!(reader.shard_count(), shards, "document too small to shard");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut touched = 0usize;
    while reader.advance().expect("well-formed input") {
        let v = reader.view();
        touched += v.text().len();
        for attr in v.attrs() {
            touched += attr.value.len();
        }
    }
    assert!(touched > 0, "replay must visit payloads");
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn sharded_replay_is_allocation_free_per_event() {
    let small = document(64);
    let large = document(512);
    // Warm-up for lazy runtime initialisation.
    let _ = replay_allocations(&small, 2);
    let small_allocs = (0..5).map(|_| replay_allocations(&small, 2)).min().unwrap();
    let large_allocs = (0..5).map(|_| replay_allocations(&large, 2)).min().unwrap();
    // 448 extra books × ~60 events each: one allocation per replayed event
    // would add tens of thousands. The slack absorbs the per-shard
    // transition costs (remap vector, channel bookkeeping) and allocator
    // noise from exiting worker threads.
    assert!(
        large_allocs <= small_allocs + 16,
        "replay allocations must not scale with event count: \
         64 books -> {small_allocs} allocs, 512 books -> {large_allocs} allocs"
    );
}
