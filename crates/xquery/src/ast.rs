//! Abstract syntax of the supported XQuery fragment.
//!
//! The fragment follows the paper: arbitrarily nested for-loops with joins,
//! `let`, `where`/`if` conditions with existential comparisons, direct
//! element constructors, child/attribute/`text()` steps, and the `$ROOT`
//! document variable. No aggregation, no descendant axis, no positional
//! predicates (Sec. 4 of the paper).

use std::fmt;

/// A variable name, stored without the leading `$`.
pub type VarName = String;

/// The reserved document variable.
pub const ROOT_VAR: &str = "ROOT";

/// Prefix for normalizer-generated variables; rejected in user queries.
pub const GENERATED_VAR_PREFIX: &str = "__flux";

/// A single path step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Step {
    /// `/name` — child elements with this label.
    Child(String),
    /// `/@name` — an attribute of the current element.
    Attribute(String),
    /// `/text()` — the text children of the current element.
    Text,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Child(n) => write!(f, "{n}"),
            Step::Attribute(n) => write!(f, "@{n}"),
            Step::Text => write!(f, "text()"),
        }
    }
}

/// A rooted path `$var/step/step/...`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    pub start: VarName,
    pub steps: Vec<Step>,
}

impl Path {
    pub fn var(start: impl Into<VarName>) -> Path {
        Path {
            start: start.into(),
            steps: Vec::new(),
        }
    }

    pub fn child(mut self, name: impl Into<String>) -> Path {
        self.steps.push(Step::Child(name.into()));
        self
    }

    /// The trailing step, if any.
    pub fn last_step(&self) -> Option<&Step> {
        self.steps.last()
    }

    /// True when every step is a child step (an element-valued path).
    pub fn is_element_path(&self) -> bool {
        self.steps.iter().all(|s| matches!(s, Step::Child(_)))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.start)?;
        for step in &self.steps {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

/// Comparison operators. General comparisons with existential semantics:
/// `A op B` is true iff some pair of items from A and B satisfies `op`
/// (numeric when both sides parse as numbers, string otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Path(Path),
    StringLit(String),
    /// Numeric literal, stored as written.
    NumberLit(String),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Path(p) => write!(f, "{p}"),
            Operand::StringLit(s) => write!(f, "\"{s}\""),
            Operand::NumberLit(n) => write!(f, "{n}"),
        }
    }
}

/// A boolean condition (`where` clauses and `if` tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    Cmp {
        lhs: Operand,
        op: CmpOp,
        rhs: Operand,
    },
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
    /// `exists(path)` (also the effective boolean value of a bare path).
    Exists(Path),
    /// `empty(path)`.
    Empty(Path),
    True,
    False,
}

/// One part of an attribute value template: `year="{$b/@year}-ed"`.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    Literal(String),
    Expr(Expr),
}

/// An attribute constructor inside a direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrConstructor {
    pub name: String,
    pub value: Vec<AttrPart>,
}

/// An XQuery expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The empty sequence `()`.
    Empty,
    /// A sequence `e1, e2, ...` (also adjacency inside constructors).
    Sequence(Vec<Expr>),
    /// A string literal.
    StringLit(String),
    /// A bare variable (copies the bound node to the output).
    Var(VarName),
    /// A path expression (copies matching nodes / attribute text).
    Path(Path),
    /// A direct element constructor.
    Element {
        name: String,
        attributes: Vec<AttrConstructor>,
        content: Box<Expr>,
    },
    /// `for $var in source (where cond)? return body`.
    For {
        var: VarName,
        source: Path,
        where_clause: Option<Box<Cond>>,
        body: Box<Expr>,
    },
    /// `let $var := value return body`.
    Let {
        var: VarName,
        value: Box<Expr>,
        body: Box<Expr>,
    },
    /// `if (cond) then .. else ..`.
    If {
        cond: Box<Cond>,
        then_branch: Box<Expr>,
        else_branch: Box<Expr>,
    },
}

impl Expr {
    /// Wraps a list of expressions as a sequence, upholding the sequence
    /// invariants of the normal form: nested sequences are spliced in place,
    /// empties are dropped, and fewer than two survivors collapse to the
    /// item itself (or to [`Expr::Empty`]).
    pub fn seq(items: Vec<Expr>) -> Expr {
        fn flatten(items: Vec<Expr>, flat: &mut Vec<Expr>) {
            for item in items {
                match item {
                    Expr::Empty => {}
                    Expr::Sequence(inner) => flatten(inner, flat),
                    other => flat.push(other),
                }
            }
        }
        let mut flat = Vec::with_capacity(items.len());
        flatten(items, &mut flat);
        match flat.len() {
            0 => Expr::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Expr::Sequence(flat),
        }
    }

    /// Visits every sub-expression (pre-order), including conditions'
    /// operand paths via the callback `on_path`.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Empty | Expr::StringLit(_) | Expr::Var(_) | Expr::Path(_) => {}
            Expr::Sequence(items) => {
                for item in items {
                    item.visit(f);
                }
            }
            Expr::Element {
                attributes,
                content,
                ..
            } => {
                for attr in attributes {
                    for part in &attr.value {
                        if let AttrPart::Expr(e) = part {
                            e.visit(f);
                        }
                    }
                }
                content.visit(f);
            }
            Expr::For { body, .. } => body.visit(f),
            Expr::Let { value, body, .. } => {
                value.visit(f);
                body.visit(f);
            }
            Expr::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit(f);
                else_branch.visit(f);
            }
        }
    }
}

impl Cond {
    /// All paths mentioned in the condition.
    pub fn paths(&self, out: &mut Vec<Path>) {
        match self {
            Cond::Cmp { lhs, rhs, .. } => {
                if let Operand::Path(p) = lhs {
                    out.push(p.clone());
                }
                if let Operand::Path(p) = rhs {
                    out.push(p.clone());
                }
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.paths(out);
                b.paths(out);
            }
            Cond::Not(c) => c.paths(out),
            Cond::Exists(p) | Cond::Empty(p) => out.push(p.clone()),
            Cond::True | Cond::False => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_display() {
        let p = Path::var("b").child("title");
        assert_eq!(p.to_string(), "$b/title");
        let mut p2 = Path::var("b");
        p2.steps.push(Step::Attribute("year".into()));
        assert_eq!(p2.to_string(), "$b/@year");
        let mut p3 = Path::var("t");
        p3.steps.push(Step::Text);
        assert_eq!(p3.to_string(), "$t/text()");
    }

    #[test]
    fn seq_flattening() {
        assert_eq!(Expr::seq(vec![]), Expr::Empty);
        assert_eq!(Expr::seq(vec![Expr::Empty, Expr::Empty]), Expr::Empty);
        assert_eq!(
            Expr::seq(vec![Expr::StringLit("x".into())]),
            Expr::StringLit("x".into())
        );
        let two = Expr::seq(vec![
            Expr::StringLit("x".into()),
            Expr::StringLit("y".into()),
        ]);
        assert!(matches!(two, Expr::Sequence(ref v) if v.len() == 2));
    }

    #[test]
    fn cond_paths_collected() {
        let c = Cond::And(
            Box::new(Cond::Cmp {
                lhs: Operand::Path(Path::var("b").child("author")),
                op: CmpOp::Eq,
                rhs: Operand::StringLit("Goedel".into()),
            }),
            Box::new(Cond::Exists(Path::var("b").child("editor"))),
        );
        let mut paths = Vec::new();
        c.paths(&mut paths);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].to_string(), "$b/author");
        assert_eq!(paths[1].to_string(), "$b/editor");
    }

    #[test]
    fn is_element_path() {
        assert!(Path::var("b").child("a").child("c").is_element_path());
        let mut p = Path::var("b");
        p.steps.push(Step::Text);
        assert!(!p.is_element_path());
    }
}
