//! CI perf-regression gate over `BENCH_events.json`.
//!
//! Usage: `perf_gate <committed.json> <fresh.json> [--threshold 0.10]
//!         [--json <verdict.json>]`
//!
//! Compares every `events_per_sec` stage in the committed recording's
//! `current` and `parallel` sections — and every `workload_<id>` section
//! of the workload matrix (`flux_bench::workloads()`) — against the
//! freshly measured file and fails (exit 1) when any stage regresses by
//! more than the threshold.
//! Stages that also record `peak_buffer_bytes` (the engine stages) are
//! gated on memory too: buffered bytes growing more than the threshold
//! over the committed recording is a regression of the paper's headline
//! metric, and fails the same way. Memory is deterministic, so that check
//! arms even when the events/sec comparison has to skip.
//! Comparisons are only meaningful on like-for-like hardware and workload:
//!
//! * a `host_cores` mismatch means the runner is not the recording host —
//!   the events/sec comparison **skips with a visible notice** instead of
//!   comparing apples to oranges (the deterministic memory gate still
//!   runs, so the exit code can still be 1);
//! * a workload-stamp mismatch is a configuration error (the `--e8`
//!   harness refuses to overwrite across workloads, so the committed file
//!   should never drift) and fails loudly (exit 2);
//! * a stage present in the committed file but missing from the fresh one
//!   fails — silently dropping a measurement is how perf claims rot;
//! * a section the workload matrix expects but the committed file lacks
//!   (or a `parallel` section recorded on a 1-core host, whose shard
//!   speedups carry no signal) **skips with a visible notice** — never
//!   silently.
//!
//! The file format is our own generator's output
//! (`experiments --e8` → `BENCH_events.json`); parsing is a small
//! brace-matching scan rather than a JSON dependency, which the offline
//! build environment does not have.
//!
//! `--json <path>` additionally writes a machine-readable verdict file
//! (overall pass/fail, every comparison with its delta, every skipped
//! section) without changing the human output. When the gate fails and
//! the fresh recording embeds a telemetry `run_report`, the per-stage
//! span totals are printed after the failures so a throughput regression
//! can be attributed to the pipeline stage that slowed down.

use flux_telemetry::json::JsonWriter;
use std::process::exit;

/// One gated comparison, kept for the `--json` verdict file.
struct Comparison {
    stage: String,
    metric: &'static str,
    base: f64,
    fresh: Option<f64>,
    ok: bool,
}

impl Comparison {
    fn delta_pct(&self) -> Option<f64> {
        self.fresh
            .filter(|_| self.base > 0.0)
            .map(|fresh| (fresh / self.base - 1.0) * 100.0)
    }
}

/// Extracts the string value of a `"key": "value"` pair.
fn extract_str<'j>(json: &'j str, key: &str) -> Option<&'j str> {
    let marker = format!("\"{key}\": \"");
    let start = json.find(&marker)? + marker.len();
    let end = json[start..].find('"')?;
    Some(&json[start..start + end])
}

/// Extracts the numeric value of a `"key": <number>` pair.
fn extract_num(json: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = json.find(&marker)? + marker.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the body of a top-level `"name": { ... }` section by brace
/// matching (the generator never nests braces inside strings).
fn extract_section<'j>(json: &'j str, name: &str) -> Option<&'j str> {
    let marker = format!("\"{name}\": {{");
    let start = json.find(&marker)? + marker.len();
    let mut depth = 1usize;
    for (i, b) in json[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Stage names in a section: every `"key": {` object that records an
/// `events_per_sec` figure.
fn stages(section: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = section;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(qe) = after.find('"') else { break };
        let key = &after[..qe];
        let tail = after[qe + 1..].trim_start_matches(':').trim_start();
        if tail.starts_with('{') {
            let object = extract_section(rest, key).unwrap_or("");
            if extract_num(object, "events_per_sec").is_some() {
                out.push(key.to_string());
            }
        }
        rest = &after[qe + 1..];
    }
    out
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {path}: {e}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.10f64;
    let mut verdict_path: Option<String> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("perf_gate: --threshold needs a number");
                exit(2);
            });
        } else if a == "--json" {
            verdict_path = Some(it.next().cloned().unwrap_or_else(|| {
                eprintln!("perf_gate: --json needs a file path");
                exit(2);
            }));
        } else {
            files.push(a.clone());
        }
    }
    let [committed_path, fresh_path] = files.as_slice() else {
        eprintln!(
            "usage: perf_gate <committed.json> <fresh.json> [--threshold 0.10] [--json FILE]"
        );
        exit(2);
    };
    let committed = read(committed_path);
    let fresh = read(fresh_path);

    // Same workload, or the numbers mean different things.
    let base_workload = extract_str(&committed, "workload").unwrap_or("");
    let fresh_workload = extract_str(&fresh, "workload").unwrap_or("");
    if base_workload != fresh_workload {
        eprintln!("perf_gate: workload stamps differ — the committed recording has drifted:");
        eprintln!("  committed: {base_workload}");
        eprintln!("  fresh:     {fresh_workload}");
        exit(2);
    }

    // Same hardware, or skip the *throughput* comparison with a notice:
    // events/sec across different core counts (or machines) is not a
    // regression signal. Peak buffered bytes are deterministic — the
    // memory gate stays armed either way.
    let base_cores = extract_num(&committed, "host_cores");
    let fresh_cores = extract_num(&fresh, "host_cores");
    let cores_match = base_cores == fresh_cores;
    if !cores_match {
        println!(
            "perf_gate: events/sec comparison SKIPPED — committed recording was made on a host \
             with {} core(s), this runner has {}; cross-hardware events/sec deltas are not \
             regressions. Re-record BENCH_events.json on this class of host to arm the \
             throughput gate here. The deterministic peak_buffer_bytes gate still applies.",
            base_cores.map_or("?".to_string(), |c| format!("{c}")),
            fresh_cores.map_or("?".to_string(), |c| format!("{c}")),
        );
    }

    // The recording on a single-core host still measures sharded
    // throughput, but its speedup axis is pinned at ~1.0x: say so rather
    // than letting a green "parallel" section imply scaling was gated.
    if base_cores == Some(1.0) {
        println!(
            "perf_gate: NOTE parallel: committed recording was made on a 1-core host — its \
             shard speedups are bounded at 1.0x, so this gate checks sharded *overhead* only, \
             not scaling. Re-record on a multicore host to gate speedup."
        );
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut comparisons: Vec<Comparison> = Vec::new();
    let mut skips: Vec<String> = Vec::new();
    if !cores_match {
        skips.push("events_per_sec: cross-hardware recording (host_cores mismatch)".to_string());
    }
    let mut sections: Vec<String> = vec!["current".into(), "parallel".into()];
    sections.extend(
        flux_bench::workloads()
            .iter()
            .filter(|w| w.perf_gated)
            .map(|w| w.section_name()),
    );
    for section_name in &sections {
        let Some(base_section) = extract_section(&committed, section_name) else {
            // A silent skip here would read as "gated and green" — make
            // the hole visible instead.
            println!(
                "perf_gate: SKIP {section_name}: no committed section — re-record \
                 BENCH_events.json (cargo run --release -p flux_bench --bin experiments -- --e8) \
                 to arm this gate"
            );
            skips.push(format!("{section_name}: no committed section"));
            continue;
        };
        let fresh_section = extract_section(&fresh, section_name).unwrap_or("");
        for stage in stages(base_section) {
            let base_stage = extract_section(base_section, &stage)
                .expect("stages() only lists objects it parsed");
            let base_eps = extract_num(base_stage, "events_per_sec")
                .expect("stages() only lists objects with events_per_sec");
            let fresh_stage = extract_section(fresh_section, &stage);
            let label = format!("{section_name}.{stage}");
            let Some(fresh_stage) = fresh_stage else {
                println!("perf_gate: FAIL {label}: stage missing from the fresh recording");
                regressions += 1;
                comparisons.push(Comparison {
                    stage: label,
                    metric: "events_per_sec",
                    base: base_eps,
                    fresh: None,
                    ok: false,
                });
                continue;
            };
            if cores_match {
                match extract_num(fresh_stage, "events_per_sec") {
                    None => {
                        println!(
                            "perf_gate: FAIL {label}: events_per_sec missing from the fresh stage"
                        );
                        regressions += 1;
                        comparisons.push(Comparison {
                            stage: label.clone(),
                            metric: "events_per_sec",
                            base: base_eps,
                            fresh: None,
                            ok: false,
                        });
                    }
                    Some(fresh_eps) => {
                        compared += 1;
                        let delta_pct = (fresh_eps / base_eps - 1.0) * 100.0;
                        let ok = fresh_eps >= base_eps * (1.0 - threshold);
                        let verdict = if ok {
                            "ok"
                        } else {
                            regressions += 1;
                            "FAIL"
                        };
                        println!(
                            "perf_gate: {verdict:>4} {label:<28} {base_eps:>12.0} -> {fresh_eps:>12.0} events/s ({delta_pct:+.1}%)"
                        );
                        comparisons.push(Comparison {
                            stage: label.clone(),
                            metric: "events_per_sec",
                            base: base_eps,
                            fresh: Some(fresh_eps),
                            ok,
                        });
                    }
                }
            }
            // Memory gate: any stage recording peak buffered bytes must
            // not grow them past the threshold — buffer consumption is
            // the paper's headline metric and is deterministic.
            if let Some(base_mem) = extract_num(base_stage, "peak_buffer_bytes") {
                match extract_num(fresh_stage, "peak_buffer_bytes") {
                    None => {
                        println!(
                            "perf_gate: FAIL {label}: peak_buffer_bytes missing from the fresh stage"
                        );
                        regressions += 1;
                        comparisons.push(Comparison {
                            stage: label,
                            metric: "peak_buffer_bytes",
                            base: base_mem,
                            fresh: None,
                            ok: false,
                        });
                    }
                    Some(fresh_mem) => {
                        compared += 1;
                        let delta_pct = if base_mem > 0.0 {
                            (fresh_mem / base_mem - 1.0) * 100.0
                        } else {
                            0.0
                        };
                        let regressed = fresh_mem > base_mem * (1.0 + threshold)
                            || (base_mem == 0.0 && fresh_mem > 0.0);
                        let verdict = if regressed {
                            regressions += 1;
                            "FAIL"
                        } else {
                            "ok"
                        };
                        println!(
                            "perf_gate: {verdict:>4} {label:<28} {base_mem:>12.0} -> {fresh_mem:>12.0} peak bytes ({delta_pct:+.1}%)"
                        );
                        comparisons.push(Comparison {
                            stage: label,
                            metric: "peak_buffer_bytes",
                            base: base_mem,
                            fresh: Some(fresh_mem),
                            ok: !regressed,
                        });
                    }
                }
            }
        }
    }
    if compared == 0 {
        eprintln!("perf_gate: no comparable stages found — malformed recordings?");
        exit(2);
    }
    if let Some(path) = &verdict_path {
        let verdict = render_verdict(threshold, compared, regressions, &comparisons, &skips);
        if let Err(e) = std::fs::write(path, verdict) {
            eprintln!("perf_gate: cannot write {path}: {e}");
            exit(2);
        }
        println!("perf_gate: wrote machine-readable verdict to {path}");
    }
    if regressions > 0 {
        print_report_attribution(&fresh);
        eprintln!(
            "perf_gate: {regressions} comparison(s) regressed more than {:.0}% vs the committed baseline",
            threshold * 100.0
        );
        exit(1);
    }
    println!(
        "perf_gate: all {compared} comparisons within {:.0}% of the committed baseline",
        threshold * 100.0
    );
}

/// Renders the `--json` verdict document.
fn render_verdict(
    threshold: f64,
    compared: usize,
    regressions: usize,
    comparisons: &[Comparison],
    skips: &[String],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("verdict", if regressions > 0 { "fail" } else { "pass" });
    w.field_f64("threshold", threshold);
    w.field_u64("compared", compared as u64);
    w.field_u64("regressions", regressions as u64);
    w.begin_named_arr("comparisons");
    for c in comparisons {
        w.begin_obj();
        w.field_str("stage", &c.stage);
        w.field_str("metric", c.metric);
        w.field_f64("base", c.base);
        match c.fresh {
            Some(fresh) => w.field_f64("fresh", fresh),
            None => w.field_raw("fresh", "null"),
        }
        if let Some(delta) = c.delta_pct() {
            w.field_f64("delta_pct", delta);
        }
        w.field_bool("ok", c.ok);
        w.end_obj();
    }
    w.end_arr();
    w.begin_named_arr("skipped");
    for s in skips {
        let mut rendered = String::from("\"");
        flux_telemetry::json::escape_into(&mut rendered, s);
        rendered.push('"');
        w.value_raw(&rendered);
    }
    w.end_arr();
    w.end_obj();
    let mut out = w.finish();
    out.push('\n');
    out
}

/// On failure, prints the per-stage span totals from the fresh
/// recording's embedded telemetry `run_report`, so a throughput
/// regression can be pinned on the pipeline stage that slowed down.
/// Quiet when the recording has no report or carries no spans (a build
/// without `--features telemetry`).
fn print_report_attribution(fresh: &str) {
    let Some(report) = extract_section(fresh, "run_report") else {
        return;
    };
    let mut lines = Vec::new();
    let mut rest = report;
    while let Some(pos) = rest.find("\"name\": \"") {
        let after = &rest[pos + "\"name\": \"".len()..];
        let Some(name_end) = after.find('"') else {
            break;
        };
        let name = &after[..name_end];
        // The stage's body runs until its next sibling/child stage name.
        let chunk_end = after[name_end..]
            .find("\"name\": \"")
            .map_or(after.len(), |i| name_end + i);
        let chunk = &after[name_end..chunk_end];
        if let Some(spans) = extract_section(chunk, "spans_ns") {
            for line in spans.lines() {
                let entry = line.trim().trim_end_matches(',');
                if !entry.is_empty() {
                    lines.push(format!("perf_gate:   {name:<16} {entry}"));
                }
            }
        }
        rest = &after[chunk_end..];
    }
    if !lines.is_empty() {
        println!(
            "perf_gate: span attribution from the fresh recording's run_report \
             (where the pipeline spent its time):"
        );
        for line in lines {
            println!("{line}");
        }
    }
}
