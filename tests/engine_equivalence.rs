//! Property-based cross-engine equivalence: on randomly generated
//! documents, the FluXQuery streaming engine, the DOM baseline and the
//! projection baseline must produce byte-identical output for every
//! catalog query — and FluXQuery must also agree with itself when the
//! algebraic optimizer is disabled.
//!
//! The workload-matrix properties extend the same idea across the
//! pathological generators: every named workload shape, at arbitrary
//! seeds and scales, must clear the full differential grid (all engines ×
//! shard counts {1, 2, 8} × bounded/unbounded interner) via
//! `flux_conformance`.

use flux_bench::{catalog, run_engine, workloads, Domain};
use flux_conformance::{assert_engines_equivalent, assert_stream_equivalent};
use fluxquery::EngineKind;
use proptest::prelude::*;

fn domains() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::BibWeak),
        Just(Domain::BibFig1),
        Just(Domain::Auction),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// All four engine configurations agree on every applicable catalog
    /// query for arbitrary seeds and sizes.
    #[test]
    fn engines_agree_on_random_documents(
        seed in 0u64..10_000,
        scale in 1u32..12,
        domain in domains(),
    ) {
        let scale = scale as f64 / 20.0; // 0.05 .. 0.55
        let doc = domain.document(scale, seed);
        for q in catalog().into_iter().filter(|q| q.domain == domain) {
            let mut reference: Option<Vec<u8>> = None;
            for kind in [
                EngineKind::Flux,
                EngineKind::FluxNoAlgebra,
                EngineKind::Projection,
                EngineKind::Dom,
            ] {
                let outcome = run_engine(kind, q.query, domain.dtd(), doc.as_bytes())
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", q.id, kind.label()));
                match &reference {
                    None => reference = Some(outcome.output),
                    Some(expected) => prop_assert_eq!(
                        &outcome.output,
                        expected,
                        "{} disagrees on {} (seed {}, scale {})",
                        kind.label(),
                        q.id,
                        seed,
                        scale
                    ),
                }
            }
        }
    }

    /// The FluX engine's peak buffer never exceeds the DOM engine's (it can
    /// only buffer less than the whole document).
    #[test]
    fn flux_never_buffers_more_than_dom(
        seed in 0u64..10_000,
        scale in 2u32..10,
    ) {
        let scale = scale as f64 / 10.0;
        let doc = Domain::BibWeak.document(scale, seed);
        let q = flux_bench::Q3;
        let flux = run_engine(EngineKind::Flux, q, Domain::BibWeak.dtd(), doc.as_bytes()).unwrap();
        let dom = run_engine(EngineKind::Dom, q, Domain::BibWeak.dtd(), doc.as_bytes()).unwrap();
        prop_assert!(
            flux.stats.peak_buffer_bytes <= dom.stats.peak_buffer_bytes,
            "flux {} > dom {}",
            flux.stats.peak_buffer_bytes,
            dom.stats.peak_buffer_bytes
        );
    }
}

// The workload-matrix properties run the full conformance grid per case
// (engines × shard counts × interner bounds), so each case is ~50 engine
// runs: a handful of cases per property already covers every workload id
// at several seeds.
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    /// Every workload shape — at arbitrary seed and scale — streams
    /// identically through the sequential reader and every sharded
    /// configuration, bounded or unbounded interner.
    #[test]
    fn workload_matrix_streams_agree(
        widx in 0u32..1_024,
        seed in 0u64..10_000,
        scale in 1u32..8,
    ) {
        let all = workloads();
        let w = &all[widx as usize % all.len()];
        let scale = scale as f64 / 10.0; // 0.1 .. 0.7
        let doc = w.document(scale, seed);
        assert_stream_equivalent(
            &format!("{} (seed {seed}, scale {scale})", w.id),
            doc.as_bytes(),
        );
    }

    /// Every query-bearing workload clears the engine grid: all engines,
    /// shard counts and interner bounds produce the reference output and
    /// the reference stats.
    #[test]
    fn workload_matrix_engines_agree(
        widx in 0u32..1_024,
        seed in 0u64..10_000,
        scale in 1u32..6,
    ) {
        let all = workloads();
        let with_query: Vec<&flux_bench::Workload> =
            all.iter().filter(|w| w.query.is_some()).collect();
        let w = with_query[widx as usize % with_query.len()];
        let scale = scale as f64 / 10.0; // 0.1 .. 0.5
        assert_engines_equivalent(w, scale, seed);
    }
}
