//! # flux-baseline
//!
//! The two comparison engines of the paper's evaluation:
//!
//! * [`DomEngine`] — materialise the whole document, then evaluate (the
//!   memory architecture of conventional main-memory XQuery engines);
//! * [`ProjectionEngine`] — stream, materialise only the query's projection
//!   paths, then evaluate (Marian & Siméon, the paper's reference \[10\]).
//!
//! Both use the same parser, tree and interpreter as the FluXQuery engine,
//! so measured differences reflect the *architecture* (what must be
//! buffered), not incidental implementation differences. Neither validates
//! against the DTD nor exploits it — that is precisely what FluXQuery adds.

pub mod dom;
pub mod error;
pub mod projection;

pub use dom::DomEngine;
pub use error::{BaselineError, Result};
pub use projection::ProjectionEngine;
