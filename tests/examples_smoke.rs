//! Smoke test: every example target must build and run cleanly, so the
//! examples in the README cannot rot silently.
//!
//! The test shells out to the same `cargo` that is running the test suite,
//! builds all examples once, then executes each produced binary and checks
//! the exit status (plus a minimal output sanity check).

use std::path::PathBuf;
use std::process::Command;

/// Every example under `examples/`, with a string its stdout must contain.
const EXAMPLES: &[(&str, &str)] = &[
    ("quickstart", "Q3"),
    ("bibliography", "fluxquery"),
    ("auction_join", "process-stream"),
    ("order_stream", "alert"),
    ("validate_stream", "past"),
    ("explain_optimizer", "=="),
];

fn cargo() -> Command {
    Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()))
}

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn all_examples_build_and_run() {
    // One shared build keeps this test fast and asserts `cargo build
    // --examples` covers every target.
    let status = cargo()
        .args(["build", "--examples"])
        .current_dir(manifest_dir())
        .status()
        .expect("spawn cargo build --examples");
    assert!(status.success(), "cargo build --examples failed");

    let listed: Vec<String> = std::fs::read_dir(manifest_dir().join("examples"))
        .expect("examples dir")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    for name in &listed {
        assert!(
            EXAMPLES.iter().any(|(known, _)| known == name),
            "example `{name}` exists on disk but is missing from the smoke test list"
        );
    }
    assert_eq!(listed.len(), EXAMPLES.len(), "smoke list out of date");

    let target_dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| manifest_dir().join("target"));
    for (name, expect) in EXAMPLES {
        let binary = target_dir.join("debug/examples").join(name);
        let output = Command::new(&binary)
            .current_dir(manifest_dir())
            .output()
            .unwrap_or_else(|e| panic!("running example `{name}` ({}): {e}", binary.display()));
        assert!(
            output.status.success(),
            "example `{name}` exited with {:?}:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(expect),
            "example `{name}` ran but its output lacks {expect:?}:\n{stdout}"
        );
    }
}
