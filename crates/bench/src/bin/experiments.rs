//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p flux-bench --bin experiments [--eN ...]`
//! With no arguments, all experiments run.

use flux_bench::{catalog, fmt_bytes, run_engine, workloads, Domain, Q3};
use flux_shard::{ShardConfig, ShardedReader};
use flux_xmlgen::{bib_string, BibConfig};
use fluxquery_core::{AnyEngine, EngineKind, FluxEngine, Input, Options};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = ["--accept-workload"];
    let want =
        |id: &str| args.iter().all(|a| flags.contains(&a.as_str())) || args.iter().any(|a| a == id);
    let accept_workload = args.iter().any(|a| a == "--accept-workload");

    if want("--e1") {
        e1_buffer_q3();
    }
    if want("--e2") {
        e2_strong_dtd();
    }
    if want("--e3") {
        e3_memory_scaling();
    }
    if want("--e4") {
        e4_runtime_scaling();
    }
    if want("--e5") {
        e5_query_suite();
    }
    if want("--e6") {
        e6_ablation_merge();
    }
    if want("--e7") {
        e7_ablation_unsat();
    }
    if want("--e8") {
        e8_xsax_throughput(accept_workload);
    }
    if want("--e9") {
        e9_ablation_scheduling();
    }
}

fn header(id: &str, title: &str, source: &str) {
    println!("\n=== {id}: {title} ===");
    println!("    (paper source: {source})\n");
}

/// E1 — Q3 under the weak DTD: per-engine peak memory (Sec. 2 claim:
/// FluXQuery buffers the authors of one book at a time).
fn e1_buffer_q3() {
    header(
        "E1",
        "buffer use for XMP Q3, weak DTD",
        "Sec. 2: 'we only need to buffer the author children of one book node at a time'",
    );
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>14}",
        "books", "input", "fluxquery", "projection", "dom"
    );
    for &books in &[100usize, 500, 2_500] {
        let doc = bib_string(&BibConfig::weak(books, 42));
        let mut row = format!("{books:<10} {:>8}", fmt_bytes(doc.len()));
        for kind in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom] {
            let outcome = run_engine(kind, Q3, Domain::BibWeak.dtd(), doc.as_bytes()).expect("run");
            row.push_str(&format!(
                " {:>14}",
                fmt_bytes(outcome.stats.peak_buffer_bytes)
            ));
        }
        println!("{row}");
    }
    println!("\nshape: fluxquery flat (one book's authors); projection and dom grow linearly.");
}

/// E2 — Q3 under Figure 1's DTD: zero buffering (Sec. 2).
fn e2_strong_dtd() {
    header(
        "E2",
        "Q3 under the strong Figure 1 DTD",
        "Sec. 2: 'no buffering is required to execute query Q'",
    );
    for (label, dtd, domain) in [
        ("weak DTD", Domain::BibWeak.dtd(), Domain::BibWeak),
        ("Fig. 1 DTD", Domain::BibFig1.dtd(), Domain::BibFig1),
    ] {
        let engine = FluxEngine::compile(Q3, dtd, &Options::default()).expect("compile");
        let doc = domain.document(5.0, 42);
        let (_, stats) = engine.run_to_string(&doc).expect("run");
        println!(
            "{label:<12} buffered handlers: {}   peak content buffered: {:>10}   (input {})",
            engine.buffered_handler_count(),
            fmt_bytes(stats.peak_buffer_bytes),
            fmt_bytes(doc.len()),
        );
    }
    println!(
        "\nshape: Fig. 1 eliminates the on-first handler; the residual peak is scope shells only."
    );
}

/// E3 — peak memory vs. document size (the companion paper's memory curve).
fn e3_memory_scaling() {
    header(
        "E3",
        "peak buffered memory vs. document size (Q3, weak DTD)",
        "[8]-style evaluation: 'far less memory than other XQuery systems'",
    );
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>14}",
        "scale", "input", "fluxquery", "projection", "dom"
    );
    for &scale in &[0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let doc = Domain::BibWeak.document(scale, 42);
        let mut row = format!("{scale:<8} {:>10}", fmt_bytes(doc.len()));
        for kind in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom] {
            let outcome = run_engine(kind, Q3, Domain::BibWeak.dtd(), doc.as_bytes()).expect("run");
            row.push_str(&format!(
                " {:>14}",
                fmt_bytes(outcome.stats.peak_buffer_bytes)
            ));
        }
        println!("{row}");
    }
}

/// E4 — runtime vs. document size (the companion paper's runtime curve).
fn e4_runtime_scaling() {
    header(
        "E4",
        "runtime vs. document size (Q3, weak DTD)",
        "[8]-style evaluation: 'far less runtime'",
    );
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>14}",
        "scale", "input", "fluxquery", "projection", "dom"
    );
    for &scale in &[1.0f64, 4.0, 16.0, 64.0] {
        let doc = Arc::new(Domain::BibWeak.document(scale, 42).into_bytes());
        let mut row = format!("{scale:<8} {:>10}", fmt_bytes(doc.len()));
        for kind in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom] {
            let engine = AnyEngine::compile(kind, Q3, Domain::BibWeak.dtd()).expect("compile");
            // Best of three runs to dampen noise.
            let mut best = std::time::Duration::MAX;
            for _ in 0..3 {
                let mut out = Vec::new();
                let start = Instant::now();
                engine
                    .run_input(Input::from_shared_bytes(Arc::clone(&doc)), &mut out)
                    .expect("run");
                best = best.min(start.elapsed());
            }
            row.push_str(&format!(" {:>14.2?}", best));
        }
        println!("{row}");
    }
}

/// E5 — the full query catalog: memory and runtime per engine.
fn e5_query_suite() {
    header(
        "E5",
        "per-query peak memory and runtime across the catalog",
        "[8]-style evaluation over XMP/XMark-style workloads",
    );
    println!(
        "{:<10} {:>10} | {:>12} {:>12} {:>12} | {:>10} {:>10} {:>10}",
        "query", "input", "flux-mem", "proj-mem", "dom-mem", "flux-t", "proj-t", "dom-t"
    );
    for q in catalog() {
        let doc = Arc::new(q.domain.document(2.0, 42).into_bytes());
        let mut mems = Vec::new();
        let mut times = Vec::new();
        for kind in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom] {
            let engine = AnyEngine::compile(kind, q.query, q.domain.dtd()).expect("compile");
            let mut out = Vec::new();
            let start = Instant::now();
            let stats = engine
                .run_input(Input::from_shared_bytes(Arc::clone(&doc)), &mut out)
                .expect("run");
            times.push(start.elapsed());
            mems.push(stats.peak_buffer_bytes);
        }
        println!(
            "{:<10} {:>10} | {:>12} {:>12} {:>12} | {:>10.1?} {:>10.1?} {:>10.1?}",
            q.id,
            fmt_bytes(doc.len()),
            fmt_bytes(mems[0]),
            fmt_bytes(mems[1]),
            fmt_bytes(mems[2]),
            times[0],
            times[1],
            times[2],
        );
    }
}

/// E6 — ablation: loop merging (R1) on/off (Sec. 3.1 cardinality rule).
fn e6_ablation_merge() {
    header(
        "E6",
        "ablation: for-loop merging under cardinality constraints",
        "Sec. 3.1: merging two publisher loops into one",
    );
    let q = r#"<out>{ for $b in $ROOT/bib/book return
        <r>{ for $x in $b/publisher return <a>{$x}</a> }
           { for $y in $b/publisher return <bb>{$y}</bb> }</r> }</out>"#;
    let doc = Domain::BibFig1.document(8.0, 42);
    for (label, options) in [
        ("optimizer on ", Options::default()),
        ("optimizer off", Options::without_algebraic_optimizer()),
    ] {
        let engine = FluxEngine::compile(q, Domain::BibFig1.dtd(), &options).expect("compile");
        let start = Instant::now();
        let (_, stats) = engine.run_to_string(&doc).expect("run");
        println!(
            "{label}  R1 fired: {:<5}  buffered handlers: {}  peak: {:>10}  total buffered: {:>10}  runtime: {:.2?}",
            engine.query().algebra_trace.iter().any(|r| r.rule == "R1"),
            engine.buffered_handler_count(),
            fmt_bytes(stats.peak_buffer_bytes),
            fmt_bytes(stats.total_buffered_bytes as usize),
            start.elapsed(),
        );
    }
    println!("\nshape: with R1 one publisher pass; without it the second loop buffers publishers.");
}

/// E7 — ablation: unsatisfiable-conditional elimination (R2, Sec. 3.1).
fn e7_ablation_unsat() {
    header(
        "E7",
        "ablation: unsatisfiable conditional elimination",
        "Sec. 3.1: author = 'Goedel' and editor = 'Goedel' can never hold",
    );
    let q = r#"<out>{ for $b in $ROOT/bib/book return
        if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit>{$b}</hit> else () }</out>"#;
    let doc = Domain::BibFig1.document(8.0, 42);
    for (label, options) in [
        ("optimizer on ", Options::default()),
        ("optimizer off", Options::without_algebraic_optimizer()),
    ] {
        let engine = FluxEngine::compile(q, Domain::BibFig1.dtd(), &options).expect("compile");
        let start = Instant::now();
        let (out, stats) = engine.run_to_string(&doc).expect("run");
        println!(
            "{label}  R2 fired: {:<5}  buffered handlers: {}  peak: {:>10}  runtime: {:.2?}  output: {} bytes",
            engine.query().algebra_trace.iter().any(|r| r.rule == "R2"),
            engine.buffered_handler_count(),
            fmt_bytes(stats.peak_buffer_bytes),
            start.elapsed(),
            out.len(),
        );
    }
    println!("\nshape: both produce the same (hit-free) output; with R2 the whole-book buffer disappears.");
}

/// E9 — ablation: the order-constraint scheduler itself. A FluX engine
/// that buffers everything (no streaming handlers) vs. the real scheduler.
fn e9_ablation_scheduling() {
    header(
        "E9",
        "ablation: order-constraint scheduling vs. buffer-everything FluX",
        "the paper's primary contribution (Sec. 3.1, step 3)",
    );
    println!(
        "{:<22} {:>10} | {:>12} {:>14} {:>10}",
        "configuration", "handlers", "peak-mem", "buffer-traffic", "runtime"
    );
    for (domain, label) in [
        (Domain::BibWeak, "weak DTD"),
        (Domain::BibFig1, "Fig. 1 DTD"),
    ] {
        let doc = domain.document(8.0, 42);
        for (config, options) in [
            ("scheduled", Options::default()),
            ("buffer-everything", Options::without_streaming()),
        ] {
            let engine = FluxEngine::compile(Q3, domain.dtd(), &options).expect("compile");
            let start = Instant::now();
            let (_, stats) = engine.run_to_string(&doc).expect("run");
            println!(
                "{:<22} {:>10} | {:>12} {:>14} {:>10.1?}",
                format!("{config} ({label})"),
                engine.buffered_handler_count(),
                fmt_bytes(stats.peak_buffer_bytes),
                fmt_bytes(stats.total_buffered_bytes as usize),
                start.elapsed(),
            );
        }
    }
    println!("\nshape: without scheduling, FluX degenerates to per-node buffering — the order");
    println!("constraints are what make the difference, not the FluX representation itself.");
}

/// Pre-refactor (string-event) E8 figures, recorded on the dev host that
/// landed the interned-symbol event core PR (best of three release runs,
/// `Domain::BibFig1.document(32.0, 42)`). They anchor the perf trajectory
/// in `BENCH_events.json`; the printed deltas are only meaningful on
/// comparable hardware — on other machines, trend `BENCH_events.json`
/// runs from the *same* host against each other instead.
const BASELINE_HOST_NOTE: &str =
    "recorded on the PR-2 dev host; cross-machine deltas are not meaningful — \
     compare same-host runs over time";
const BASELINE_RAW: (u64, f64) = (59_318, 0.00703);
const BASELINE_VALIDATE: (u64, f64) = (59_318, 0.00990);
const BASELINE_PAST: (u64, f64) = (62_518, 0.01003);

/// One timed measurement: events delivered and best-of-three seconds.
struct Measured {
    events: u64,
    seconds: f64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.seconds
    }

    /// Best of `n` runs of `f`, which returns the event count.
    fn best_of(n: usize, mut f: impl FnMut() -> u64) -> Measured {
        let mut events = 0;
        let mut seconds = f64::MAX;
        for _ in 0..n {
            let start = Instant::now();
            events = f();
            seconds = seconds.min(start.elapsed().as_secs_f64());
        }
        Measured { events, seconds }
    }
}

/// The workload stamp recorded in `BENCH_events.json`. Perf-trajectory
/// comparisons are only meaningful against the same workload, so E8
/// refuses to overwrite a file recorded for a different one (see
/// [`verify_recorded_workload`]).
fn e8_workload_stamp(doc_len: usize) -> String {
    format!("Domain::BibFig1.document(32.0, 42), {doc_len} bytes (engines: Q3 over BibWeak 8.0)")
}

/// Extracts the string value of a top-level `"key": "value"` pair from
/// `BENCH_events.json` (our own generator never escapes quotes in it).
fn extract_json_str<'j>(json: &'j str, key: &str) -> Option<&'j str> {
    let marker = format!("\"{key}\": \"");
    let start = json.find(&marker)? + marker.len();
    let end = json[start..].find('"')?;
    Some(&json[start..start + end])
}

/// Refuses to proceed when an existing `BENCH_events.json` was recorded
/// for a different workload than the one this binary just generated:
/// silently overwriting it would make the perf trajectory compare apples
/// to oranges. `--accept-workload` re-baselines explicitly.
fn verify_recorded_workload(workload: &str, accept: bool) {
    let Ok(existing) = std::fs::read_to_string("BENCH_events.json") else {
        return; // first recording on this checkout
    };
    let Some(recorded) = extract_json_str(&existing, "workload") else {
        eprintln!("error: BENCH_events.json exists but has no workload stamp; refusing to guess.");
        eprintln!("rerun with --accept-workload to overwrite it.");
        std::process::exit(1);
    };
    if recorded == workload {
        return;
    }
    if accept {
        println!("re-baselining BENCH_events.json:\n  old workload: {recorded}\n  new workload: {workload}");
        return;
    }
    eprintln!("error: BENCH_events.json was recorded for a different workload:");
    eprintln!("  recorded:  {recorded}");
    eprintln!("  generated: {workload}");
    eprintln!("events/sec deltas against it would not be apples-to-apples.");
    eprintln!("rerun with --accept-workload to re-baseline deliberately.");
    std::process::exit(1);
}

/// E8 — XSAX overhead: raw parsing vs. validation vs. validation with
/// registered past queries (Sec. 3.2), on the interned-symbol hot path,
/// plus the parallel sharded pipeline at 1/2/4/8 shards. Also writes
/// `BENCH_events.json` so the perf trajectory is machine-readable.
fn e8_xsax_throughput(accept_workload: bool) {
    header(
        "E8",
        "XSAX throughput: parse vs. validate vs. validate + on-first vs. sharded",
        "Sec. 3.2: the XSAX validating parser",
    );
    use flux_dtd::Dtd;
    use flux_xsax::{PastLabels, XsaxParser};
    let doc = Domain::BibFig1.document(32.0, 42);
    let dtd = Dtd::parse(Domain::BibFig1.dtd()).expect("dtd");
    verify_recorded_workload(&e8_workload_stamp(doc.len()), accept_workload);

    // Phase one alone: the vectorised structural prescan over the whole
    // document. "events" for this stage are *bytes swept* — the stage
    // exists so a kernel regression is visible separately from the
    // phase-two parse that consumes the index.
    let prescan = Measured::best_of(3, || {
        let mut idx = flux_xml::simd::StructuralIndex::new();
        flux_xml::simd::prescan_into(doc.as_bytes(), 0, &mut idx);
        std::hint::black_box(&idx);
        doc.len() as u64
    });
    println!(
        "structural prescan:  {:>8} bytes in {:.2?}  ({:.0} MB/s, {} kernel)",
        prescan.events,
        std::time::Duration::from_secs_f64(prescan.seconds),
        prescan.events_per_sec() / 1e6,
        flux_xml::simd::active_isa_name(),
    );

    // Raw well-formedness parsing on the zero-copy view pull (advance();
    // payloads stay in the scanner window / recycled buffers).
    let raw = Measured::best_of(3, || {
        let mut events = 0u64;
        let mut reader = flux_xml::XmlReader::new(doc.as_bytes());
        while reader.advance().expect("parse") {
            events += 1;
        }
        events
    });
    println!(
        "raw parse:           {:>8} events in {:.2?}",
        raw.events,
        std::time::Duration::from_secs_f64(raw.seconds)
    );

    // Validating parse on the step protocol (next_step(); delivered
    // events stay borrowed in the source).
    let validated = Measured::best_of(3, || {
        let mut events = 0u64;
        let mut parser = XsaxParser::new(doc.as_bytes(), &dtd).expect("xsax");
        while parser.next_step().expect("validate").is_some() {
            events += 1;
        }
        events
    });
    println!(
        "xsax validate:       {:>8} events in {:.2?}",
        validated.events,
        std::time::Duration::from_secs_f64(validated.seconds)
    );

    // Zero-copy tape replay: record the stream once (untimed), then
    // measure pure view replay — this is the serial tape→consumer term of
    // the sharded pipeline, now span arithmetic instead of per-event
    // copies.
    let tape = {
        let mut reader = flux_xml::XmlReader::new(doc.as_bytes());
        let mut tape = flux_xml::EventTape::with_capacity(doc.len() / 16, doc.len() / 2);
        while reader.advance().expect("parse") {
            tape.push(&reader.view(), reader.event_start(), reader.position());
        }
        tape
    };
    let replay = Measured::best_of(3, || {
        let mut events = 0u64;
        let mut touched = 0usize;
        for i in 0..tape.len() {
            let v = tape.view(i, flux_xml::SymbolRemap::identity());
            touched += v.text().len() + v.attr_count();
            events += 1;
        }
        std::hint::black_box(touched);
        events
    });
    println!(
        "tape replay:         {:>8} events in {:.2?}",
        replay.events,
        std::time::Duration::from_secs_f64(replay.seconds)
    );

    // Validation plus a past query on every book.
    let book = dtd.lookup("book").expect("book");
    let title = dtd.lookup("title").expect("title");
    let author = dtd.lookup("author").expect("author");
    let with_past = Measured::best_of(3, || {
        let mut events = 0u64;
        let mut parser = XsaxParser::new(doc.as_bytes(), &dtd).expect("xsax");
        parser
            .register_past(book, PastLabels::labels([title, author]))
            .expect("register");
        while parser.next_step().expect("validate").is_some() {
            events += 1;
        }
        events
    });
    println!(
        "xsax + on-first:     {:>8} events in {:.2?}",
        with_past.events,
        std::time::Duration::from_secs_f64(with_past.seconds)
    );

    // Parallel sharded raw parse: same byte stream, N worker threads, one
    // stitched event tape replayed to the consumer.
    let mut parallel: Vec<(usize, Measured)> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        // Build the input vector outside the timed region: the sequential
        // arm parses borrowed bytes, so charging the sharded arm a full
        // input memcpy would skew the recorded speedup.
        let mut m = Measured {
            events: 0,
            seconds: f64::MAX,
        };
        for _ in 0..3 {
            let bytes = doc.clone().into_bytes();
            let mut reader = ShardedReader::new(bytes, ShardConfig::new(shards));
            let mut events = 0u64;
            let start = Instant::now();
            while reader.advance().expect("sharded parse") {
                events += 1;
            }
            m.events = events;
            m.seconds = m.seconds.min(start.elapsed().as_secs_f64());
        }
        assert_eq!(m.events, raw.events, "sharded event count must match");
        println!(
            "sharded parse x{shards}:    {:>8} events in {:>8.2?}  ({:.2}x vs sequential raw)",
            m.events,
            std::time::Duration::from_secs_f64(m.seconds),
            m.events_per_sec() / raw.events_per_sec(),
        );
        parallel.push((shards, m));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("(host exposes {cores} core(s); shard speedup is bounded by available cores)");
    println!(
        "\nshape: validation costs a small constant factor over raw parsing; past tracking is\n\
         nearly free; zero-copy tape replay is an order of magnitude cheaper than parsing, so\n\
         sharding scales raw parsing with cores (pipelined validation hides the replay term)."
    );
    for (label, m, (base_events, base_secs)) in [
        ("raw parse", &raw, BASELINE_RAW),
        ("xsax validate", &validated, BASELINE_VALIDATE),
        ("xsax + on-first", &with_past, BASELINE_PAST),
    ] {
        let base_eps = base_events as f64 / base_secs;
        println!(
            "{label:<16} {:>10.0} events/s vs string-era baseline {:>10.0} events/s ({:+.1}%)",
            m.events_per_sec(),
            base_eps,
            (m.events_per_sec() / base_eps - 1.0) * 100.0,
        );
    }
    println!("(baseline {BASELINE_HOST_NOTE})");

    write_bench_events_json(
        &doc, &prescan, &raw, &replay, &validated, &with_past, &parallel,
    );
}

/// Emits `BENCH_events.json`: events/sec for the event pipeline (including
/// the sharded-parallel stage) plus events/sec and peak buffer bytes per
/// engine, with the pre-refactor string-event baseline alongside for trend
/// tracking.
fn write_bench_events_json(
    doc: &str,
    prescan: &Measured,
    raw: &Measured,
    replay: &Measured,
    validated: &Measured,
    past: &Measured,
    parallel: &[(usize, Measured)],
) {
    fn entry(m: &Measured) -> String {
        format!(
            "{{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}",
            m.events,
            m.seconds,
            m.events_per_sec()
        )
    }
    let mut engines = String::new();
    let engine_doc = Arc::new(Domain::BibWeak.document(8.0, 42).into_bytes());
    for (i, kind) in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom]
        .into_iter()
        .enumerate()
    {
        let engine = AnyEngine::compile(kind, Q3, Domain::BibWeak.dtd()).expect("compile");
        let mut peak = 0usize;
        let m = Measured::best_of(3, || {
            let mut out = Vec::new();
            let stats = engine
                .run_input(Input::from_shared_bytes(Arc::clone(&engine_doc)), &mut out)
                .expect("run");
            peak = stats.peak_buffer_bytes;
            stats.events
        });
        if i > 0 {
            engines.push_str(",\n");
        }
        engines.push_str(&format!(
            "    \"{}\": {{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}, \"peak_buffer_bytes\": {}}}",
            kind.label(),
            m.events,
            m.seconds,
            m.events_per_sec(),
            peak
        ));
    }
    // The evaluator stage: the compiled cursor evaluator over an
    // already-buffered document with a counting (non-writing) sink —
    // isolates pure evaluation throughput from parsing and serialisation.
    // "events" are output events produced per evaluation.
    {
        use flux_xml::tree::TreeBuilder;
        use flux_xml::{RawEvent, ReaderConfig, SymbolTable, XmlReader};
        let mut reader =
            XmlReader::with_symbols(&engine_doc[..], ReaderConfig::default(), SymbolTable::new());
        let mut builder = TreeBuilder::new().with_shared_text();
        let mut ev = RawEvent::new();
        while reader.next_into(&mut ev).expect("parse") {
            builder.raw_event(reader.symbols(), &ev).expect("build");
        }
        let doc = builder.finish().expect("tree");
        let parsed = flux_xquery::parse_query(Q3).expect("parse query");
        let normalized = flux_xquery::normalize(&parsed).expect("normalize");
        let mut slot_map = flux_xquery::SlotMap::new();
        let root_slot = slot_map.slot(flux_xquery::ROOT_VAR);
        let compiled = flux_xquery::compile_expr(&normalized, &mut slot_map, &mut |label| {
            doc.symbols().lookup(label)
        })
        .expect("compile");
        let mut slots = slot_map.make_slots();
        slots[root_slot] = Some(doc.document_node());
        let mut evaluator = flux_xquery::CursorEvaluator::new();
        let m = Measured::best_of(3, || {
            let mut sink = flux_xquery::CountingSink::default();
            evaluator
                .eval(&doc, &compiled, &mut slots, &mut sink)
                .expect("eval");
            sink.events
        });
        println!(
            "cursor evaluator:    {:>8} output events in {:.2?}  ({:.0} events/s, buffered doc)",
            m.events,
            std::time::Duration::from_secs_f64(m.seconds),
            m.events_per_sec(),
        );
        engines.push_str(&format!(
            ",\n    \"evaluator\": {{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}",
            m.events,
            m.seconds,
            m.events_per_sec()
        ));
    }
    let baseline = |&(events, seconds): &(u64, f64)| {
        format!(
            "{{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}",
            events,
            seconds,
            events as f64 / seconds
        )
    };
    // One instrumented sharded engine run: the unified pipeline RunReport
    // (per-shard parse/replay spans, bounded-channel stalls and dwell,
    // prescan counters, buffer residency). A build without `--features
    // telemetry` still embeds the structure, flagged `"telemetry": false`.
    let run_report = {
        let engine = FluxEngine::compile(Q3, Domain::BibWeak.dtd(), &Options::with_shards(2))
            .expect("compile");
        let mut sink = Vec::new();
        let (_, report) = engine
            .run_input_with_report(Input::from_shared_bytes(Arc::clone(&engine_doc)), &mut sink)
            .expect("instrumented run");
        report
    };
    let pipeline = run_report.find("shard_pipeline");
    let lookup_counter = |name: &str| pipeline.and_then(|s| s.counter_value(name)).unwrap_or(0);
    let lookup_span = |name: &str| pipeline.and_then(|s| s.span_value(name)).unwrap_or(0);
    println!(
        "channel (report run): {} recv stall(s), {} ns stalled, {} ns tape dwell \
         (per-shard detail in run_report)",
        lookup_counter("recv_stalls"),
        lookup_span("recv_stall_ns"),
        lookup_span("dwell_ns"),
    );
    let mut parallel_section = String::new();
    // Bounded-channel behaviour of the instrumented sharded engine run:
    // stall counts and time spent blocked on the shard channel, plus how
    // long finished tapes sat queued before the consumer reached them.
    parallel_section.push_str(&format!(
        "    \"channel\": {{\"recv_stalls\": {}, \"recv_stall_ns\": {}, \"dwell_ns\": {}}},\n",
        lookup_counter("recv_stalls"),
        lookup_span("recv_stall_ns"),
        lookup_span("dwell_ns"),
    ));
    for (shards, m) in parallel {
        parallel_section.push_str(&format!(
            "    \"shards_{}\": {{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}, \"speedup_vs_sequential\": {:.2}}},\n",
            shards,
            m.events,
            m.seconds,
            m.events_per_sec(),
            m.events_per_sec() / raw.events_per_sec(),
        ));
    }
    parallel_section.push_str(&format!(
        "    \"host_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    parallel_section.push_str(
        "    \"note\": \"raw parse over the same bytes via flux_shard::ShardedReader; \
         speedups are vs this file's current.raw_parse on the same host and are bounded \
         by host_cores (a 1-core recording host cannot exceed 1.0x). channel records the \
         run_report run's bounded-channel stalls and tape dwell, per-shard breakdown under \
         run_report.stages.shard_pipeline (all zeros when recorded without --features \
         telemetry)\"",
    );
    // The prescan stage counts bytes swept, not events — same shape so
    // perf_gate gates it like every other stage, with the unit spelled
    // out for human readers.
    let prescan_entry = format!(
        "{{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}, \"unit\": \"bytes\"}}",
        prescan.events,
        prescan.seconds,
        prescan.events_per_sec()
    );
    // Re-indent the report renderer's output to sit one level deep.
    let report_json = run_report.to_json().replace('\n', "\n  ");
    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p flux_bench --bin experiments -- --e8\",\n  \
         \"workload\": \"{}\",\n  \
         \"isa\": \"{}\",\n  \
         \"baseline_string_events\": {{\n    \"note\": \"pre-refactor string-event pipeline, {}\",\n    \
         \"raw_parse\": {},\n    \"xsax_validate\": {},\n    \"xsax_with_past\": {}\n  }},\n  \
         \"current\": {{\n    \"structural_prescan\": {},\n    \"raw_parse\": {},\n    \"tape_replay\": {},\n    \"xsax_validate\": {},\n    \"xsax_with_past\": {},\n{}\n  }},\n  \
         \"parallel\": {{\n{}\n  }},\n  \
         \"run_report\": {},\n{}}}\n",
        e8_workload_stamp(doc.len()),
        flux_xml::simd::active_isa_name(),
        BASELINE_HOST_NOTE,
        baseline(&BASELINE_RAW),
        baseline(&BASELINE_VALIDATE),
        baseline(&BASELINE_PAST),
        prescan_entry,
        entry(raw),
        entry(replay),
        entry(validated),
        entry(past),
        engines,
        parallel_section,
        report_json,
        workload_matrix_sections(),
    );
    match std::fs::write("BENCH_events.json", &json) {
        Ok(()) => println!("\nwrote BENCH_events.json"),
        Err(e) => eprintln!("\ncould not write BENCH_events.json: {e}"),
    }
}

/// Records one `"workload_<id>"` section per perf-gated entry of the
/// workload matrix: raw-parse throughput over the generated document plus,
/// where the workload carries a query, FluX throughput and
/// `peak_buffer_bytes`. `perf_gate` gates every one of these stages.
fn workload_matrix_sections() -> String {
    let mut out = String::new();
    for w in workloads().iter().filter(|w| w.perf_gated) {
        let doc = w.document(w.record_scale, 42);
        let parse = Measured::best_of(3, || {
            let mut events = 0u64;
            let mut reader = flux_xml::XmlReader::new(doc.as_bytes());
            while reader.advance().expect("workload parses") {
                events += 1;
            }
            events
        });
        println!(
            "{:<22} {:>9} bytes  parse {:>10.0} events/s",
            w.section_name(),
            doc.len(),
            parse.events_per_sec()
        );
        out.push_str(&format!(
            "  \"{}\": {{\n    \"bytes\": {},\n    \"scale\": {},\n    \
             \"parse\": {{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}",
            w.section_name(),
            doc.len(),
            w.record_scale,
            parse.events,
            parse.seconds,
            parse.events_per_sec(),
        ));
        if let (Some(query), Some(dtd)) = (w.query, w.dtd) {
            let engine = AnyEngine::compile(EngineKind::Flux, query, dtd).expect("compile");
            let mut peak = 0usize;
            let flux = Measured::best_of(3, || {
                let mut sink = Vec::new();
                let stats = engine
                    .run_input(Input::from_bytes(doc.clone().into_bytes()), &mut sink)
                    .expect("run");
                peak = stats.peak_buffer_bytes;
                stats.events
            });
            println!(
                "{:<22} {:>15}  flux  {:>10.0} events/s, peak {} bytes",
                "",
                "",
                flux.events_per_sec(),
                peak
            );
            out.push_str(&format!(
                ",\n    \"flux\": {{\"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}, \"peak_buffer_bytes\": {}}}",
                flux.events,
                flux.seconds,
                flux.events_per_sec(),
                peak,
            ));
        }
        out.push_str("\n  },\n");
    }
    out.push_str(&format!(
        "  \"workload_matrix_note\": \"one section per perf-gated flux_bench::workloads() entry, \
         documents generated at the registry's record_scale with seed 42; \
         {} sections recorded\"\n",
        workloads().iter().filter(|w| w.perf_gated).count()
    ));
    out
}
