//! The malformed-input corpus: seeded broken documents with an
//! expected-error manifest.
//!
//! Each entry is a deterministic corruption of a valid generated document
//! — truncations inside every construct, mismatched and stray tags, bad
//! entity and character references, duplicate attributes, invalid UTF-8,
//! multiple roots, top-level text, and **seam-straddling** breakage placed
//! deep inside documents large enough that an 8-way shard split puts
//! chunk boundaries both before and after the flaw.
//!
//! The manifest records what the *sequential* reader must report (error
//! class plus a stable message fragment); the conformance suite then
//! asserts that every sharded mode reproduces that error **byte-exactly**
//! (message, offset, line and column) after delivering the identical
//! valid prefix. The corpus is the fixed point the "sharded errors are
//! exactly sequential" claim is tested against.

use crate::bib::{bib_string, BibConfig};
use flux_xml::XmlError;

/// The error class an entry must produce (mirrors [`XmlError`] without
/// tying the manifest to payload fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedKind {
    /// Input ended inside a construct ([`XmlError::UnexpectedEof`]).
    UnexpectedEof,
    /// Syntactic garbage ([`XmlError::Syntax`]).
    Syntax,
    /// Well-formedness violation ([`XmlError::WellFormedness`]).
    WellFormedness,
    /// Undefined entity reference ([`XmlError::UnknownEntity`]).
    UnknownEntity,
    /// Invalid UTF-8 ([`XmlError::InvalidUtf8`]).
    InvalidUtf8,
}

impl ExpectedKind {
    /// Whether `err` is of this class.
    pub fn matches(self, err: &XmlError) -> bool {
        matches!(
            (self, err),
            (ExpectedKind::UnexpectedEof, XmlError::UnexpectedEof { .. })
                | (ExpectedKind::Syntax, XmlError::Syntax { .. })
                | (
                    ExpectedKind::WellFormedness,
                    XmlError::WellFormedness { .. }
                )
                | (ExpectedKind::UnknownEntity, XmlError::UnknownEntity { .. })
                | (ExpectedKind::InvalidUtf8, XmlError::InvalidUtf8 { .. })
        )
    }
}

/// One corpus entry: the broken bytes plus the manifest of what parsing
/// them must report.
pub struct CorpusEntry {
    /// Stable identifier (used in test failure messages and docs).
    pub id: &'static str,
    /// What is broken and where.
    pub description: &'static str,
    /// The document bytes (not necessarily UTF-8 — that can be the flaw).
    pub bytes: Vec<u8>,
    /// The error class the sequential reader must report.
    pub expect: ExpectedKind,
    /// A fragment the rendered error message must contain (`""` = any).
    pub message_contains: &'static str,
}

impl CorpusEntry {
    /// Asserts `err` against this entry's manifest, panicking with a
    /// corpus-entry-labelled message otherwise.
    pub fn check_error(&self, err: &XmlError) {
        assert!(
            self.expect.matches(err),
            "corpus entry `{}`: expected {:?}, got: {err}",
            self.id,
            self.expect
        );
        let rendered = err.to_string();
        assert!(
            rendered.contains(self.message_contains),
            "corpus entry `{}`: error `{rendered}` does not mention `{}`",
            self.id,
            self.message_contains
        );
    }
}

/// A small valid bibliography used as raw material for corruptions.
fn small_doc() -> String {
    bib_string(&BibConfig::fig1(6, 20))
}

/// A bibliography large enough (tens of KB) that an 8-way split places
/// seams on both sides of a flaw buried at a fractional position.
fn large_doc() -> String {
    bib_string(&BibConfig::fig1(400, 21))
}

/// Truncates `doc` at the byte where `marker`'s `n`-th occurrence starts,
/// keeping `keep` extra bytes of the marker itself.
fn truncate_at(doc: &str, marker: &str, keep: usize) -> Vec<u8> {
    let at = doc.find(marker).expect("marker present") + keep;
    doc.as_bytes()[..at].to_vec()
}

/// Replaces the first occurrence of `from` with `to`.
fn replace_first(doc: &str, from: &str, to: &str) -> Vec<u8> {
    doc.replacen(from, to, 1).into_bytes()
}

/// Replaces the occurrence of `from` nearest to `frac` of the document
/// length with `to` — the tool for placing flaws relative to shard seams.
fn replace_near(doc: &str, frac: f64, from: &str, to: &str) -> Vec<u8> {
    let target = (doc.len() as f64 * frac) as usize;
    let mut best: Option<usize> = None;
    let mut at = 0;
    while let Some(found) = doc[at..].find(from) {
        let pos = at + found;
        if best.map_or(true, |b| pos.abs_diff(target) < b.abs_diff(target)) {
            best = Some(pos);
        }
        at = pos + 1;
    }
    let pos = best.expect("needle present");
    let mut out = Vec::with_capacity(doc.len());
    out.extend_from_slice(&doc.as_bytes()[..pos]);
    out.extend_from_slice(to.as_bytes());
    out.extend_from_slice(&doc.as_bytes()[pos + from.len()..]);
    out
}

/// The full corpus. Deterministic: the same entries, bytes and manifest
/// on every call.
pub fn corpus() -> Vec<CorpusEntry> {
    let small = small_doc();
    let large = large_doc();
    let mut entries = vec![
        // --- truncations: EOF inside every construct ---------------------
        CorpusEntry {
            id: "truncate-in-start-tag",
            description: "input ends in the middle of a start tag name",
            bytes: truncate_at(&small, "<publisher>", 5),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "`>` closing the start tag",
        },
        CorpusEntry {
            id: "truncate-in-attr-value",
            description: "input ends inside a quoted attribute value",
            bytes: truncate_at(&small, "year=\"", 8),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "expected closing attribute quote",
        },
        CorpusEntry {
            id: "truncate-quoted-gt-decoys",
            description: "start tag truncated where every visible `>` is inside a quoted attribute value — the tag-end probe must reject all of them and report EOF",
            bytes: {
                let mut b = truncate_at(&small, "<title>", 0);
                b.extend_from_slice(b"<decoy a=\"x>y\" b='p>q' c=\">>>\"");
                b
            },
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "`>` closing the start tag",
        },
        CorpusEntry {
            id: "truncate-in-text",
            description: "input ends mid-text with elements still open",
            bytes: truncate_at(&small, "</title>", 0),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "closing tags for open elements",
        },
        CorpusEntry {
            id: "truncate-in-end-tag",
            description: "input ends in the middle of an end tag",
            bytes: truncate_at(&small, "</book>", 3),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "`>` closing the end tag",
        },
        CorpusEntry {
            id: "truncate-in-comment",
            description: "an unterminated comment runs to end of input",
            bytes: replace_first(&small, "<title>", "<!-- never closed <title>"),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "end of comment `-->`",
        },
        CorpusEntry {
            id: "truncate-in-cdata",
            description: "an unterminated CDATA section runs to end of input",
            bytes: replace_first(&small, "</bib>", "<![CDATA[ never closed"),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "`]]>` ending CDATA",
        },
        CorpusEntry {
            id: "truncate-in-pi",
            description: "an unterminated processing instruction",
            bytes: replace_first(&small, "</bib>", "</bib><?pi never closed"),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "end of processing instruction",
        },
        CorpusEntry {
            id: "missing-root-close",
            description: "the root element is never closed",
            bytes: replace_first(&small, "</bib>", ""),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "closing tags for open elements",
        },
        CorpusEntry {
            id: "empty-input",
            description: "zero bytes",
            bytes: Vec::new(),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "expected root element",
        },
        CorpusEntry {
            id: "whitespace-only",
            description: "whitespace but no root element",
            bytes: b"  \n\t  \n".to_vec(),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "expected root element",
        },
        // --- tag-structure violations ------------------------------------
        CorpusEntry {
            id: "mismatched-end-tag",
            description: "a title closed as </titel>",
            bytes: replace_first(&small, "</title>", "</titel>"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "expected </title>, found </titel>",
        },
        CorpusEntry {
            id: "mismatched-case",
            description: "XML names are case-sensitive: <book> closed as </Book>",
            bytes: replace_first(&small, "</book>", "</Book>"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "expected </book>, found </Book>",
        },
        CorpusEntry {
            id: "stray-end-tag",
            description: "an end tag with no matching open element",
            bytes: replace_first(&small, "<book", "</price><book"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "mismatched end tag",
        },
        CorpusEntry {
            id: "second-root",
            description: "a second root element after the document element",
            bytes: replace_first(&small, "</bib>", "</bib><bib></bib>"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "multiple root elements",
        },
        CorpusEntry {
            id: "top-level-text",
            description: "character data after the root element",
            bytes: replace_first(&small, "</bib>", "</bib>stray text"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "character data after the root element",
        },
        CorpusEntry {
            id: "duplicate-attribute",
            description: "the same attribute twice on one element",
            bytes: replace_first(&small, "year=\"", "year=\"2000\" year=\""),
            expect: ExpectedKind::WellFormedness,
            message_contains: "duplicate attribute `year`",
        },
        // --- syntax garbage ----------------------------------------------
        CorpusEntry {
            id: "lt-in-attr-value",
            description: "a raw `<` inside an attribute value",
            bytes: replace_first(&small, "year=\"", "year=\"<"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "`<` is not allowed in attribute values",
        },
        CorpusEntry {
            id: "name-starts-with-digit",
            description: "an element name starting with a digit",
            bytes: replace_first(&small, "<title>", "<1title>"),
            expect: ExpectedKind::Syntax,
            message_contains: "invalid element name",
        },
        CorpusEntry {
            id: "tag-inside-tag",
            description: "a `<` before the previous tag is closed",
            bytes: replace_first(&small, "<title>", "<title <author>"),
            expect: ExpectedKind::Syntax,
            message_contains: "malformed start tag",
        },
        CorpusEntry {
            id: "attr-missing-quotes",
            description: "an unquoted attribute value",
            bytes: replace_first(&small, "year=\"", "year=19 x=\""),
            expect: ExpectedKind::Syntax,
            message_contains: "attribute value must be quoted",
        },
        CorpusEntry {
            id: "doctype-after-root",
            description: "a DOCTYPE declaration after the document element",
            bytes: replace_first(&small, "</bib>", "</bib><!DOCTYPE bib>"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "DOCTYPE declaration after the root element",
        },
        // --- references ---------------------------------------------------
        CorpusEntry {
            id: "unknown-entity",
            description: "an undefined entity reference in text",
            bytes: replace_first(&small, "</title>", "&nosuch;</title>"),
            expect: ExpectedKind::UnknownEntity,
            message_contains: "unknown entity `&nosuch;`",
        },
        CorpusEntry {
            id: "bare-ampersand",
            description: "a bare `&` that never forms a reference",
            bytes: replace_first(&small, "</title>", " & co</title>"),
            expect: ExpectedKind::Syntax,
            message_contains: "unterminated entity reference",
        },
        CorpusEntry {
            id: "bad-char-ref",
            description: "a character reference with non-hex digits",
            bytes: replace_first(&small, "</title>", "&#xZZ;</title>"),
            expect: ExpectedKind::UnknownEntity,
            message_contains: "unknown entity `&#xZZ;`",
        },
        CorpusEntry {
            id: "char-ref-out-of-range",
            description: "a character reference above U+10FFFF",
            bytes: replace_first(&small, "</title>", "&#x110000;</title>"),
            expect: ExpectedKind::UnknownEntity,
            message_contains: "unknown entity `&#x110000;`",
        },
        // --- encoding ------------------------------------------------------
        CorpusEntry {
            id: "invalid-utf8-text",
            description: "a lone 0xFF byte inside element text",
            bytes: {
                let mut b = small.clone().into_bytes();
                let at = small.find("</title>").unwrap();
                b.insert(at, 0xFF);
                b
            },
            expect: ExpectedKind::InvalidUtf8,
            message_contains: "invalid UTF-8",
        },
        CorpusEntry {
            id: "invalid-utf8-attr",
            description: "an overlong UTF-8 sequence inside an attribute value",
            bytes: {
                let mut b = small.clone().into_bytes();
                let at = small.find("year=\"").unwrap() + "year=\"".len();
                b.splice(at..at, [0xC0, 0xAF]);
                b
            },
            expect: ExpectedKind::InvalidUtf8,
            message_contains: "invalid UTF-8",
        },
        // --- seam-straddling breakage: flaws placed at fractional depths of
        // --- a document big enough for 8 shards to split around them ------
        CorpusEntry {
            id: "seam-mismatch-mid",
            description: "mismatched end tag near the middle of a large document",
            bytes: replace_near(&large, 0.5, "</author>", "</autor>"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "expected </author>, found </autor>",
        },
        CorpusEntry {
            id: "seam-mismatch-late",
            description: "mismatched end tag in the last eighth of a large document",
            bytes: replace_near(&large, 0.9, "</price>", "</prize>"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "expected </price>, found </prize>",
        },
        CorpusEntry {
            id: "seam-entity-early",
            description: "unknown entity in the first eighth of a large document",
            bytes: replace_near(&large, 0.1, "</title>", "&boom;</title>"),
            expect: ExpectedKind::UnknownEntity,
            message_contains: "unknown entity `&boom;`",
        },
        CorpusEntry {
            id: "seam-stray-end-late",
            description: "stray end tag near the very end of a large document",
            bytes: replace_near(&large, 0.97, "<book", "</ghost><book"),
            expect: ExpectedKind::WellFormedness,
            message_contains: "found </ghost>",
        },
        CorpusEntry {
            id: "seam-truncation",
            description: "large document truncated inside a start tag",
            bytes: {
                let at = (large.len() as f64 * 0.93) as usize;
                let tag = large[at..].find('<').expect("tags everywhere") + at;
                large.as_bytes()[..tag + 3].to_vec()
            },
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "`>` closing the end tag",
        },
        CorpusEntry {
            id: "seam-comment-unterminated",
            description: "unterminated comment opened near the middle of a large document",
            bytes: replace_near(&large, 0.55, "<book", "<!-- swallows the rest <book"),
            expect: ExpectedKind::UnexpectedEof,
            message_contains: "end of comment `-->`",
        },
        CorpusEntry {
            id: "seam-invalid-utf8",
            description: "invalid UTF-8 in the third quarter of a large document",
            bytes: {
                let mut b = large.clone().into_bytes();
                let target = (large.len() as f64 * 0.75) as usize;
                let at = large[target..].find("</title>").expect("titles everywhere") + target;
                b.insert(at, 0xFE);
                b
            },
            expect: ExpectedKind::InvalidUtf8,
            message_contains: "invalid UTF-8",
        },
    ];
    // Stable order, stable ids: the manifest is part of the format.
    entries.sort_by_key(|e| e.id);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn corpus_has_at_least_twenty_unique_entries() {
        let entries = corpus();
        assert!(entries.len() >= 20, "only {} entries", entries.len());
        let ids: BTreeSet<_> = entries.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), entries.len(), "duplicate ids");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus();
        let b = corpus();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.bytes, y.bytes, "{} bytes drifted", x.id);
        }
    }

    #[test]
    fn seam_entries_are_large_enough_to_shard() {
        for e in corpus() {
            if e.id.starts_with("seam-") {
                assert!(
                    e.bytes.len() > 16 * 1024,
                    "{} is only {} bytes — too small for 8-way seams",
                    e.id,
                    e.bytes.len()
                );
            }
        }
    }
}
