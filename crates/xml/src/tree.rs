//! A lightweight arena-based document tree with **interned names**.
//!
//! Used by the baseline engines (which materialise documents or projected
//! fragments) and by the FluXQuery runtime's buffer store (which materialises
//! only BDF-selected subtrees). Element and attribute names are stored as
//! [`Symbol`]s against a per-document [`SymbolTable`] — one copy of every
//! distinct name for the whole tree, integer name comparisons everywhere —
//! so a buffered node costs its *content* bytes, not its tag vocabulary.
//! Every structure reports its heap footprint so experiments can account
//! buffered memory deterministically.
//!
//! A document seeded from a stream's table ([`Document::with_symbols`])
//! shares that table's index space: importing a stream event's name is a
//! plain integer copy ([`Document::import_name`]), no hashing and no
//! allocation. Names the seed does not cover — including
//! [`SymbolTable::OVERFLOW`] names from a bounded-interner stream, whose
//! literal spelling rides the event's side channel — are interned into the
//! document's own (unbounded) table, so a tree never stores the sentinel.

use crate::error::{Result, XmlError};
use crate::event::{Attribute, RawEvent, RawEventKind, RawEventRef, XmlEvent};
use crate::reader::XmlReader;
use crate::writer::XmlWriter;
use flux_symbols::{Symbol, SymbolTable};
use std::collections::HashMap;
use std::io::Read;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One attribute of an element node: interned name, owned value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAttr {
    /// Interned against the owning [`Document`]'s table — never
    /// [`SymbolTable::OVERFLOW`].
    pub name: Symbol,
    pub value: String,
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The virtual document node; always the arena's first entry.
    Document,
    /// An element with its attributes. The name is interned against the
    /// owning [`Document`]'s table.
    Element {
        name: Symbol,
        attributes: Vec<NodeAttr>,
    },
    /// A text node.
    Text(String),
    /// A text node whose payload lives in the owning [`Document`]'s
    /// shared-text dictionary (see [`Document::intern_shared_text`]): one
    /// copy per distinct payload, however many nodes carry it. The node
    /// itself owns no content bytes.
    SharedText(u32),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
}

impl Node {
    /// Deterministic content bytes of this node: attribute payloads and
    /// text lengths, excluding the child-pointer vector (which grows
    /// independently of this node's own data). Interned names cost nothing
    /// per node — the one copy per distinct name lives in the document's
    /// symbol table. Length-based rather than capacity-based so the number
    /// is stable across allocator behaviour.
    fn content_bytes(&self) -> usize {
        match &self.kind {
            NodeKind::Document => 0,
            NodeKind::Element { attributes, .. } => {
                attributes.len() * std::mem::size_of::<NodeAttr>()
                    + attributes.iter().map(|a| a.value.len()).sum::<usize>()
            }
            NodeKind::Text(t) => t.len(),
            // The one copy per distinct payload is charged on the
            // document's dictionary, exactly like interned names.
            NodeKind::SharedText(_) => 0,
        }
    }

    /// Content bytes plus the child-pointer vector.
    fn heap_bytes(&self) -> usize {
        self.content_bytes() + self.children.len() * std::mem::size_of::<NodeId>()
    }
}

/// An arena-allocated XML document or document fragment.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    /// Interner for element and attribute names stored in this tree.
    symbols: SymbolTable,
    /// Length of the table prefix shared (index-identically) with the
    /// stream table this document was seeded from: symbols below this
    /// index import as plain integer copies.
    aligned: usize,
    /// Heap bytes of the names *this document* interned beyond its seed
    /// (maintained incrementally; doubled like
    /// [`SymbolTable::heap_bytes`], covering both map directions). The
    /// seeded schema vocabulary is excluded — the document never copied
    /// it. This is the run-long dictionary cost of the symbol-keyed
    /// layout, reported by [`Document::memory_bytes`] and charged to the
    /// buffer accounting by the runtime's arena.
    interned_bytes: usize,
    /// The shared-text dictionary: one owned copy per distinct payload
    /// referenced by [`NodeKind::SharedText`] nodes.
    shared_texts: Vec<String>,
    /// Payload → dictionary index.
    shared_lookup: HashMap<String, u32>,
    /// Heap bytes of the dictionary, doubled like interned names (both the
    /// payload copy and its lookup key), maintained incrementally.
    shared_bytes: usize,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates a document containing only the virtual document node, with
    /// a fresh symbol table.
    pub fn new() -> Self {
        Self::with_symbols(SymbolTable::new())
    }

    /// Creates a document whose name table is seeded with `symbols`
    /// (typically a clone of the stream's table). Clones preserve indices,
    /// so stream symbols inside the seeded prefix import with no hashing
    /// at all — see [`Document::import_name`].
    pub fn with_symbols(symbols: SymbolTable) -> Self {
        let aligned = symbols.len();
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
            symbols,
            aligned,
            interned_bytes: 0,
            shared_texts: Vec::new(),
            shared_lookup: HashMap::new(),
            shared_bytes: 0,
        }
    }

    /// The document's name table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interns a name into the document's table, accounting first-sight
    /// name bytes (see [`Document::interned_name_bytes`]).
    pub fn intern(&mut self, name: &str) -> Symbol {
        let before = self.symbols.len();
        let sym = self.symbols.intern(name);
        if self.symbols.len() > before {
            self.interned_bytes += 2 * name.len();
        }
        sym
    }

    /// Heap bytes of the names this document interned beyond its seed —
    /// each distinct name exactly once, however many nodes carry it.
    pub fn interned_name_bytes(&self) -> usize {
        self.interned_bytes
    }

    /// Imports a stream event's name into this document's symbol space.
    ///
    /// * A symbol inside the seeded prefix is returned unchanged — an
    ///   integer copy, the hot path for schema-validated streams.
    /// * A stream symbol past the prefix re-interns by name (hash lookup,
    ///   allocation only on first sight).
    /// * [`SymbolTable::OVERFLOW`] (bounded-interner streams) resolves via
    ///   `literal`, the event's literal-name side channel — the tree never
    ///   stores the sentinel, so buffering an overflowed name can neither
    ///   panic nor misname the node.
    pub fn import_name(&mut self, stream: &SymbolTable, sym: Symbol, literal: &str) -> Symbol {
        if sym != SymbolTable::OVERFLOW && sym.index() < self.aligned {
            debug_assert_eq!(
                self.symbols.try_name(sym),
                stream.try_name(sym),
                "seeded prefix must agree with the stream table"
            );
            return sym;
        }
        match stream.try_name(sym) {
            Some(name) => self.intern(name),
            None => self.intern(literal),
        }
    }

    /// The virtual document node.
    pub fn document_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The root element, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(self.document_node())
            .iter()
            .copied()
            .find(|&id| matches!(self.kind(id), NodeKind::Element { .. }))
    }

    /// Number of nodes, including the document node.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deterministic estimate of heap memory held by the whole tree, in
    /// bytes (length-based, so independent of allocator growth policies).
    /// Includes the name bytes this tree itself interned (each distinct
    /// name once), but not the seeded schema vocabulary.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.nodes.iter().map(Node::heap_bytes).sum::<usize>()
            + self.interned_bytes
            + self.shared_bytes
    }

    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Element name, or `None` for text/document nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        self.name_sym(id).map(|s| self.symbols.name(s))
    }

    /// Element name symbol, or `None` for text/document nodes.
    pub fn name_sym(&self, id: NodeId) -> Option<Symbol> {
        match self.kind(id) {
            NodeKind::Element { name, .. } => Some(*name),
            _ => None,
        }
    }

    /// Text content, or `None` for element/document nodes. Shared-text
    /// nodes resolve through the dictionary.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Text(t) => Some(t),
            NodeKind::SharedText(idx) => Some(&self.shared_texts[*idx as usize]),
            _ => None,
        }
    }

    /// Attributes of an element node (empty slice otherwise).
    pub fn attributes(&self, id: NodeId) -> &[NodeAttr] {
        match self.kind(id) {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Value of the named attribute, if present. The name resolves to a
    /// symbol once; the scan over the element's attributes is integer
    /// comparisons.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        let sym = self.symbols.lookup(name)?;
        self.attribute_sym(id, sym)
    }

    /// Symbol-keyed variant of [`Document::attribute`]: no hashing, a pure
    /// integer scan over the element's attributes.
    pub fn attribute_sym(&self, id: NodeId, sym: Symbol) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name == sym)
            .map(|a| a.value.as_str())
    }

    /// Child elements with the given name, in document order. The name
    /// resolves to a symbol once; the per-child filter is an integer
    /// comparison. A name the document has never interned matches nothing.
    pub fn children_named<'a>(
        &'a self,
        id: NodeId,
        name: &str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let sym = self.symbols.lookup(name);
        self.children_named_sym(id, sym)
    }

    /// Symbol-keyed variant of [`Document::children_named`]; `None`
    /// matches nothing.
    pub fn children_named_sym<'a>(
        &'a self,
        id: NodeId,
        sym: Option<Symbol>,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| sym.is_some() && self.name_sym(c) == sym)
    }

    /// The XPath string value: concatenated descendant text in document order.
    pub fn string_value(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    /// [`Document::string_value`] into a caller-owned buffer (cleared
    /// first) — the allocation-free path once the buffer's capacity warms.
    pub fn string_value_into(&self, id: NodeId, out: &mut String) {
        out.clear();
        self.collect_text(id, out);
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::SharedText(idx) => out.push_str(&self.shared_texts[*idx as usize]),
            _ => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Creates a detached element node from string-named parts (interns
    /// the names; the convenience path for tests and tools).
    pub fn create_element(&mut self, name: &str, attributes: Vec<Attribute>) -> NodeId {
        let name = self.intern(name);
        let attributes = attributes
            .into_iter()
            .map(|a| NodeAttr {
                name: self.intern(&a.name),
                value: a.value,
            })
            .collect();
        self.create_element_sym(name, attributes)
    }

    /// Creates a detached element node from already-interned parts — the
    /// allocation-free naming path. `name` and every attribute name must
    /// be symbols of *this* document's table.
    pub fn create_element_sym(&mut self, name: Symbol, attributes: Vec<NodeAttr>) -> NodeId {
        debug_assert!(
            self.symbols.try_name(name).is_some(),
            "element name must be interned in the document table"
        );
        self.push_node(NodeKind::Element { name, attributes })
    }

    /// Creates a detached element from a stream event, importing names
    /// through [`Document::import_name`] (only attribute values copy).
    pub fn create_element_raw(&mut self, stream: &SymbolTable, ev: &RawEvent) -> NodeId {
        let name = self.import_name(stream, ev.name(), ev.target());
        let attributes = ev
            .attributes()
            .iter()
            .map(|a| NodeAttr {
                name: self.import_name(stream, a.name, &a.overflow_name),
                value: a.value.clone(),
            })
            .collect();
        self.create_element_sym(name, attributes)
    }

    /// Creates a detached element from a borrowed event view, importing
    /// names through [`Document::import_name`].
    pub fn create_element_view(&mut self, stream: &SymbolTable, ev: &RawEventRef<'_>) -> NodeId {
        let name = self.import_name(stream, ev.name(), ev.target());
        let attributes = ev
            .attrs()
            .map(|a| NodeAttr {
                name: self.import_name(stream, a.name, a.overflow_name),
                value: a.value.to_string(),
            })
            .collect();
        self.create_element_sym(name, attributes)
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Text(text.into()))
    }

    /// Dictionary index of `text`, if it has been interned.
    pub fn shared_text_lookup(&self, text: &str) -> Option<u32> {
        self.shared_lookup.get(text).copied()
    }

    /// Interns a text payload into the shared dictionary, charging its
    /// bytes (doubled, like interned names) on first sight.
    pub fn intern_shared_text(&mut self, text: &str) -> u32 {
        if let Some(idx) = self.shared_lookup.get(text) {
            return *idx;
        }
        let idx = u32::try_from(self.shared_texts.len()).expect("shared-text dictionary too large");
        self.shared_texts.push(text.to_string());
        self.shared_lookup.insert(text.to_string(), idx);
        self.shared_bytes += 2 * text.len();
        idx
    }

    /// Heap bytes of the shared-text dictionary — each distinct payload
    /// exactly once, however many nodes reference it.
    pub fn shared_text_bytes(&self) -> usize {
        self.shared_bytes
    }

    /// Creates a detached text node referencing a dictionary payload.
    pub fn create_shared_text(&mut self, idx: u32) -> NodeId {
        debug_assert!((idx as usize) < self.shared_texts.len());
        self.push_node(NodeKind::SharedText(idx))
    }

    /// Creates a detached text node through the frequency gate: payloads
    /// the gate has seen often enough intern into the shared dictionary
    /// (one copy, charged once); everything else gets a plain owned node.
    pub fn gated_text(&mut self, gate: &mut TextGate, text: &str) -> NodeId {
        if !TextGate::eligible(text) {
            return self.create_text(text);
        }
        if let Some(idx) = self.shared_text_lookup(text) {
            return self.create_shared_text(idx);
        }
        if gate.admit(text) {
            let idx = self.intern_shared_text(text);
            self.create_shared_text(idx)
        } else {
            self.create_text(text)
        }
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("document too large"));
        self.nodes.push(Node {
            kind,
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Appends `child` (which must be detached) to `parent`'s children.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(
            self.nodes[child.index()].parent.is_none(),
            "child already attached"
        );
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// Deterministic bytes owned by one node (its payload strings and the
    /// node struct), excluding the child-pointer vector so the value is
    /// identical at allocation and free time. Used for buffer accounting.
    pub fn node_heap_bytes(&self, id: NodeId) -> usize {
        self.nodes[id.index()].content_bytes() + std::mem::size_of::<Node>()
    }

    /// Replaces a node's payload for arena recycling, returning the old
    /// payload so the caller can harvest its buffers. The parent link is
    /// cleared and the children list emptied **in place** (it keeps its
    /// capacity — recycled slots are re-populated without reallocating).
    /// The caller is responsible for ensuring nothing references `id`.
    pub fn reset_node(&mut self, id: NodeId, kind: NodeKind) -> NodeKind {
        let node = &mut self.nodes[id.index()];
        let old = std::mem::replace(&mut node.kind, kind);
        node.parent = None;
        node.children.clear();
        old
    }

    /// Appends text to an existing text node (buffer population merges
    /// adjacent text chunks); returns false if the node is not a text node.
    pub fn append_to_text(&mut self, id: NodeId, more: &str) -> bool {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Text(t) => {
                t.push_str(more);
                true
            }
            _ => false,
        }
    }

    /// Merges `more` into a trailing text node of either kind: plain text
    /// appends in place; shared text first *demotes* to an owned copy (the
    /// merged payload is a new spelling — sharing it would re-gate it).
    /// Returns false for non-text nodes. `scratch` provides the owned
    /// buffer for demotion so callers can recycle capacity.
    pub fn merge_text(&mut self, id: NodeId, more: &str, scratch: &mut String) -> bool {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Text(t) => {
                t.push_str(more);
                true
            }
            NodeKind::SharedText(idx) => {
                scratch.clear();
                scratch.push_str(&self.shared_texts[*idx as usize]);
                scratch.push_str(more);
                self.nodes[id.index()].kind = NodeKind::Text(std::mem::take(scratch));
                true
            }
            _ => false,
        }
    }

    /// Parses a complete document from a reader.
    pub fn parse_reader<R: Read>(reader: &mut XmlReader<R>) -> Result<Document> {
        let mut builder = TreeBuilder::new();
        let mut ev = RawEvent::new();
        loop {
            if !reader.next_into(&mut ev)? {
                return builder.finish();
            }
            builder.raw_event(reader.symbols(), &ev)?;
        }
    }

    /// Parses a complete document from a string.
    pub fn parse_str(input: &str) -> Result<Document> {
        let mut reader = XmlReader::new(input.as_bytes());
        Self::parse_reader(&mut reader)
    }

    /// Serialises the subtree rooted at `id` to the writer. Start tags go
    /// through the writer's symbol fast path — no name strings materialise.
    pub fn serialize_node<W: std::io::Write>(
        &self,
        id: NodeId,
        writer: &mut XmlWriter<W>,
    ) -> Result<()> {
        match self.kind(id) {
            NodeKind::Document => {
                for &c in self.children(id) {
                    self.serialize_node(c, writer)?;
                }
                Ok(())
            }
            NodeKind::Element { .. } => {
                writer.start_element_node(self, id)?;
                for &c in self.children(id) {
                    self.serialize_node(c, writer)?;
                }
                writer.end_element()
            }
            NodeKind::Text(t) => writer.text(t),
            NodeKind::SharedText(idx) => writer.text(&self.shared_texts[*idx as usize]),
        }
    }

    /// Serialises the whole document to a string.
    pub fn to_xml_string(&self) -> Result<String> {
        let mut writer = XmlWriter::new(Vec::new());
        self.serialize_node(self.document_node(), &mut writer)?;
        writer.finish()?;
        String::from_utf8(writer.into_inner()).map_err(|_| XmlError::WriterMisuse {
            message: "serialiser produced invalid UTF-8".to_string(),
        })
    }
}

/// Frequency gate deciding which text payloads are worth interning into a
/// document's shared dictionary.
///
/// A fixed-size array of approximate counters (FNV-hashed, overwrite on
/// collision): short payloads that keep recurring cross the gate and
/// intern; one-off payloads never pay a dictionary charge. The table is a
/// few KB, allocated once, never grows, and is deliberately *not* part of
/// buffer accounting — like the arena's recycling pools, it is a bounded
/// fixture of the machine, not data retained from the stream. Collisions
/// only delay (or rarely, hasten) interning; they never affect content,
/// because the dictionary itself is keyed by the full payload.
///
/// Sightings are scoped to a *generation* (see
/// [`TextGate::bump_generation`]): a holder that frees its buffered
/// content wholesale — the runtime's scoped arena — bumps the generation
/// on every free, so only payloads repeated while their earlier copies
/// are still live can cross the gate. Those are exactly the payloads
/// whose sharing lowers peak buffered bytes; a string that recurs once
/// per scope would charge the resident dictionary without ever saving a
/// live byte. Full-document materialisation never bumps, keeping the
/// plain whole-stream frequency semantics.
#[derive(Debug, Clone)]
pub struct TextGate {
    /// `(payload hash, sightings, generation)` per slot.
    slots: Vec<(u64, u32, u32)>,
    /// Current generation; slots stamped with an older one are stale.
    gen: u32,
}

/// Payloads longer than this never intern: long strings rarely repeat and
/// a mistaken charge would be expensive.
const SHARED_TEXT_MAX_LEN: usize = 64;
/// Sightings before a payload is interned.
const SHARED_TEXT_GATE: u32 = 4;
/// Counter slots (power of two).
const TEXT_GATE_SLOTS: usize = 1024;

impl Default for TextGate {
    fn default() -> Self {
        Self::new()
    }
}

impl TextGate {
    pub fn new() -> Self {
        TextGate {
            slots: vec![(0, 0, 0); TEXT_GATE_SLOTS],
            gen: 0,
        }
    }

    /// Starts a new sighting generation: every counter in the table is
    /// (lazily) reset. Wrapping after 2^32 bumps can at worst resurrect a
    /// stale count — the same benign delay/hasten effect as a hash
    /// collision, never a content change.
    pub fn bump_generation(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    /// Whether a payload is even a sharing candidate.
    pub fn eligible(text: &str) -> bool {
        !text.is_empty() && text.len() <= SHARED_TEXT_MAX_LEN
    }

    /// Records a sighting; true once the payload has recurred enough to be
    /// worth interning.
    pub fn admit(&mut self, text: &str) -> bool {
        debug_assert!(Self::eligible(text));
        let h = fnv1a(text.as_bytes());
        let slot = &mut self.slots[(h as usize) & (TEXT_GATE_SLOTS - 1)];
        if slot.2 != self.gen {
            // Stale counter from an earlier generation: everything it saw
            // has been freed, so the tally restarts at this sighting.
            *slot = (h, 1, self.gen);
            false
        } else if slot.0 == h {
            slot.1 = slot.1.saturating_add(1);
            slot.1 >= SHARED_TEXT_GATE
        } else if slot.1 == 0 {
            *slot = (h, 1, self.gen);
            false
        } else {
            // Misra–Gries-style decay on collision: the incumbent loses a
            // sighting instead of being evicted outright, so genuinely
            // frequent payloads survive churn from one-off strings (unique
            // titles hashing into the same slot as a recurring author name
            // no longer reset its count).
            slot.1 -= 1;
            false
        }
    }
}

/// Deterministic FNV-1a (the gate must behave identically across runs for
/// reproducible buffer accounting).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Incremental tree construction from a stream of events.
///
/// Also usable for fragments: feed any balanced event sequence; the nodes end
/// up as children of the virtual document node.
pub struct TreeBuilder {
    doc: Document,
    stack: Vec<NodeId>,
    /// When present, text nodes route through the shared-text dictionary.
    gate: Option<TextGate>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    pub fn new() -> Self {
        Self::with_symbols(SymbolTable::new())
    }

    /// A builder whose document is seeded with `symbols` (see
    /// [`Document::with_symbols`]) so stream symbols inside the seeded
    /// prefix import without hashing.
    pub fn with_symbols(symbols: SymbolTable) -> Self {
        let doc = Document::with_symbols(symbols);
        let root = doc.document_node();
        TreeBuilder {
            doc,
            stack: vec![root],
            gate: None,
        }
    }

    /// Routes repeated short text payloads through the document's shared
    /// dictionary (see [`TextGate`]): full-document materialisation stops
    /// paying per-node for recurring strings.
    pub fn with_shared_text(mut self) -> Self {
        self.gate = Some(TextGate::new());
        self
    }

    /// Current insertion parent.
    fn top(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Opens an element node created by one of the document's constructors.
    fn open(&mut self, id: NodeId) {
        let parent = self.top();
        self.doc.append_child(parent, id);
        self.stack.push(id);
    }

    /// Closes the innermost open element.
    fn end_node(&mut self) -> Result<()> {
        if self.stack.len() <= 1 {
            return Err(XmlError::WriterMisuse {
                message: "unbalanced end element fed to TreeBuilder".to_string(),
            });
        }
        self.stack.pop();
        Ok(())
    }

    /// Appends text, merging with a preceding text sibling to keep string
    /// values independent of how the input was chunked.
    fn text_node(&mut self, t: &str) {
        let parent = self.top();
        if let Some(&last) = self.doc.children(parent).last() {
            let mut scratch = String::new();
            if self.doc.merge_text(last, t, &mut scratch) {
                return;
            }
        }
        let id = match &mut self.gate {
            Some(gate) => self.doc.gated_text(gate, t),
            None => self.doc.create_text(t),
        };
        self.doc.append_child(parent, id);
    }

    /// Feeds one event into the tree.
    pub fn event(&mut self, ev: &XmlEvent) -> Result<()> {
        match ev {
            XmlEvent::StartDocument
            | XmlEvent::EndDocument
            | XmlEvent::DoctypeDecl { .. }
            | XmlEvent::Comment(_)
            | XmlEvent::ProcessingInstruction { .. } => Ok(()),
            XmlEvent::StartElement { name, attributes } => {
                let id = self.doc.create_element(name, attributes.clone());
                self.open(id);
                Ok(())
            }
            XmlEvent::EndElement { .. } => self.end_node(),
            XmlEvent::Text(t) => {
                self.text_node(t);
                Ok(())
            }
        }
    }

    /// Feeds one raw (interned) event, importing names through the
    /// document's table ([`Document::import_name`]). Materialising a tree
    /// inherently copies attribute values and text — names do not copy.
    pub fn raw_event(&mut self, symbols: &SymbolTable, ev: &RawEvent) -> Result<()> {
        match ev.kind() {
            RawEventKind::StartDocument
            | RawEventKind::EndDocument
            | RawEventKind::DoctypeDecl
            | RawEventKind::Comment
            | RawEventKind::ProcessingInstruction => Ok(()),
            RawEventKind::StartElement => {
                let id = self.doc.create_element_raw(symbols, ev);
                self.open(id);
                Ok(())
            }
            RawEventKind::EndElement => self.end_node(),
            RawEventKind::Text => {
                self.text_node(ev.text());
                Ok(())
            }
        }
    }

    /// Completes the build; fails if elements are still open.
    pub fn finish(self) -> Result<Document> {
        if self.stack.len() != 1 {
            return Err(XmlError::WriterMisuse {
                message: format!(
                    "{} element(s) still open in TreeBuilder",
                    self.stack.len() - 1
                ),
            });
        }
        Ok(self.doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP</title><author>Stevens</author><author>Wright</author></book><book year="2000"><title>Data</title></book></bib>"#;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse_str(BIB).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), Some("bib"));
        let books: Vec<_> = doc.children_named(root, "book").collect();
        assert_eq!(books.len(), 2);
        assert_eq!(doc.attribute(books[0], "year"), Some("1994"));
        let authors: Vec<_> = doc.children_named(books[0], "author").collect();
        assert_eq!(authors.len(), 2);
        assert_eq!(doc.string_value(authors[0]), "Stevens");
    }

    #[test]
    fn string_value_concatenates() {
        let doc = Document::parse_str("<a>one<b>two</b>three</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.string_value(root), "onetwothree");
    }

    #[test]
    fn round_trip() {
        let doc = Document::parse_str(BIB).unwrap();
        assert_eq!(doc.to_xml_string().unwrap(), BIB);
    }

    #[test]
    fn parent_links() {
        let doc = Document::parse_str("<a><b><c/></b></a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.children(a)[0];
        let c = doc.children(b)[0];
        assert_eq!(doc.parent(c), Some(b));
        assert_eq!(doc.parent(b), Some(a));
        assert_eq!(doc.parent(a), Some(doc.document_node()));
        assert_eq!(doc.parent(doc.document_node()), None);
    }

    #[test]
    fn memory_accounting_grows_with_content() {
        let small = Document::parse_str("<a/>").unwrap();
        let big = Document::parse_str(&format!("<a>{}</a>", "x".repeat(10_000))).unwrap();
        assert!(big.memory_bytes() > small.memory_bytes() + 9_000);
    }

    #[test]
    fn repeated_names_cost_one_table_entry() {
        // 50 identically-named elements must not store the name 50 times:
        // the per-node delta is pointer-sized bookkeeping, not name bytes.
        let longname = "averylongelementname".repeat(4);
        let one = Document::parse_str(&format!("<r><{longname}/></r>")).unwrap();
        let many = {
            let body: String = (0..50).map(|_| format!("<{longname}/>")).collect();
            Document::parse_str(&format!("<r>{body}</r>")).unwrap()
        };
        let per_node = (many.memory_bytes() - one.memory_bytes()) / 49;
        assert!(
            per_node < longname.len(),
            "per-node cost {per_node} must be below the name length {}",
            longname.len()
        );
    }

    #[test]
    fn builder_fragment() {
        let mut b = TreeBuilder::new();
        b.event(&XmlEvent::StartElement {
            name: "x".into(),
            attributes: vec![],
        })
        .unwrap();
        b.event(&XmlEvent::Text("hi".into())).unwrap();
        b.event(&XmlEvent::EndElement { name: "x".into() }).unwrap();
        b.event(&XmlEvent::StartElement {
            name: "y".into(),
            attributes: vec![],
        })
        .unwrap();
        b.event(&XmlEvent::EndElement { name: "y".into() }).unwrap();
        let doc = b.finish().unwrap();
        assert_eq!(doc.children(doc.document_node()).len(), 2);
    }

    #[test]
    fn builder_merges_adjacent_text() {
        let mut b = TreeBuilder::new();
        b.event(&XmlEvent::StartElement {
            name: "x".into(),
            attributes: vec![],
        })
        .unwrap();
        b.event(&XmlEvent::Text("a".into())).unwrap();
        b.event(&XmlEvent::Text("b".into())).unwrap();
        b.event(&XmlEvent::EndElement { name: "x".into() }).unwrap();
        let doc = b.finish().unwrap();
        let x = doc.root_element().unwrap();
        assert_eq!(doc.children(x).len(), 1);
        assert_eq!(doc.string_value(x), "ab");
    }

    #[test]
    fn builder_unbalanced_rejected() {
        let mut b = TreeBuilder::new();
        assert!(b.event(&XmlEvent::EndElement { name: "x".into() }).is_err());
        let mut b2 = TreeBuilder::new();
        b2.event(&XmlEvent::StartElement {
            name: "x".into(),
            attributes: vec![],
        })
        .unwrap();
        assert!(b2.finish().is_err());
    }

    #[test]
    fn detached_create_and_append() {
        let mut doc = Document::new();
        let e = doc.create_element("root", vec![Attribute::new("k", "v")]);
        let t = doc.create_text("body");
        let docnode = doc.document_node();
        doc.append_child(docnode, e);
        doc.append_child(e, t);
        assert_eq!(doc.to_xml_string().unwrap(), r#"<root k="v">body</root>"#);
    }

    #[test]
    fn interned_bytes_match_table_convention() {
        // The incremental counter and `SymbolTable::heap_bytes` encode the
        // same convention; this pins them together so neither can drift.
        let mut doc = Document::new();
        let base = doc.symbols().heap_bytes();
        doc.create_element("booky", vec![Attribute::new("year", "1994")]);
        doc.create_element("booky", vec![]); // repeats add nothing
        let mut stream = SymbolTable::new();
        stream.intern("imported");
        let sym = stream.lookup("imported").unwrap();
        doc.import_name(&stream, sym, "");
        doc.import_name(&stream, SymbolTable::OVERFLOW, "literalname");
        assert_eq!(doc.interned_name_bytes(), doc.symbols().heap_bytes() - base);
    }

    #[test]
    fn import_name_aligns_with_seed_and_resolves_overflow() {
        let mut stream = SymbolTable::new();
        let book = stream.intern("book");
        let mut doc = Document::with_symbols(stream.clone());
        // Seeded prefix: the symbol passes through unchanged.
        assert_eq!(doc.import_name(&stream, book, ""), book);
        // A stream symbol past the seed re-interns by name.
        let late = stream.intern("pamphlet");
        let imported = doc.import_name(&stream, late, "");
        assert_eq!(doc.symbols().name(imported), "pamphlet");
        // OVERFLOW resolves through the literal side channel.
        let ovf = doc.import_name(&stream, SymbolTable::OVERFLOW, "mystery");
        assert_eq!(doc.symbols().name(ovf), "mystery");
        assert_ne!(ovf, SymbolTable::OVERFLOW);
    }

    #[test]
    fn reset_node_recycles_children_capacity() {
        let mut doc = Document::new();
        let e = doc.create_element("a", vec![]);
        let c = doc.create_element("b", vec![]);
        doc.append_child(e, c);
        let old = doc.reset_node(e, NodeKind::Text(String::new()));
        assert!(matches!(old, NodeKind::Element { .. }));
        assert!(doc.children(e).is_empty());
        assert_eq!(doc.parent(e), None);
    }

    #[test]
    fn root_element_skips_nothing_but_finds_element() {
        let doc = Document::parse_str("<only/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("only"));
    }
}
