//! Portable prescan kernel: `u64` SWAR, eight bytes per step.
//!
//! This is the dispatch fallback (and the reference implementation the
//! vectorised kernels are tested against). It reuses the carry-free
//! zero-byte mask from [`crate::scan`] — one XOR + mask pair per byte
//! class per word — and walks the match bits in order, so lane pushes stay
//! strictly increasing.

use super::index::{DeltaLane, StructuralIndex};
use crate::scan::{broadcast, zero_byte_mask};

/// Pushes every match in `mask` (the zero-byte-mask form: bit 7 of each
/// matching byte lane set) as `base + lane_index`.
#[inline]
fn push_mask(lane: &mut DeltaLane, mut mask: u64, base: u64) {
    while mask != 0 {
        lane.push(base + (mask.trailing_zeros() / 8) as u64);
        mask &= mask - 1;
    }
}

/// Sweeps `bytes` once, recording the absolute position (`base + i`) of
/// every structural byte into `idx`.
pub fn prescan(bytes: &[u8], base: u64, idx: &mut StructuralIndex) {
    let lt = broadcast(b'<');
    let gt = broadcast(b'>');
    let dq = broadcast(b'"');
    let sq = broadcast(b'\'');
    let amp = broadcast(b'&');
    let nl = broadcast(b'\n');

    let mut chunks = bytes.chunks_exact(8);
    let mut offset = 0u64;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let at = base + offset;
        push_mask(&mut idx.lt, zero_byte_mask(word ^ lt), at);
        push_mask(&mut idx.gt, zero_byte_mask(word ^ gt), at);
        push_mask(
            &mut idx.quote,
            zero_byte_mask(word ^ dq) | zero_byte_mask(word ^ sq),
            at,
        );
        push_mask(&mut idx.amp, zero_byte_mask(word ^ amp), at);
        push_mask(&mut idx.nl, zero_byte_mask(word ^ nl), at);
        offset += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if let Some(lane) = idx.lane_for_byte(b) {
            lane.push(base + offset + i as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: classify byte-at-a-time.
    fn naive(bytes: &[u8], base: u64) -> StructuralIndex {
        let mut idx = StructuralIndex::new();
        for (i, &b) in bytes.iter().enumerate() {
            if let Some(lane) = idx.lane_for_byte(b) {
                lane.push(base + i as u64);
            }
        }
        idx
    }

    fn drain(lane: &mut DeltaLane) -> Vec<u64> {
        std::iter::from_fn(|| lane.pop()).collect()
    }

    fn assert_same(a: &mut StructuralIndex, b: &mut StructuralIndex) {
        assert_eq!(drain(&mut a.lt), drain(&mut b.lt), "lt lane");
        assert_eq!(drain(&mut a.gt), drain(&mut b.gt), "gt lane");
        assert_eq!(drain(&mut a.quote), drain(&mut b.quote), "quote lane");
        assert_eq!(drain(&mut a.amp), drain(&mut b.amp), "amp lane");
        assert_eq!(drain(&mut a.nl), drain(&mut b.nl), "nl lane");
    }

    #[test]
    fn matches_naive_classification() {
        let cases: &[&[u8]] = &[
            b"",
            b"<",
            b"<a b=\"x>y\" c='&'>\ntext &amp; more\n</a>",
            b"no structure at all, just plain text padding out the words",
            b"<<<<>>>>\"\"''&&\n\n",
            "grüße <tag attr=\"\u{1F4A1}\">".as_bytes(),
        ];
        for case in cases {
            for base in [0u64, 7, 8 * 1024] {
                let mut got = StructuralIndex::new();
                prescan(case, base, &mut got);
                let mut want = naive(case, base);
                assert_same(&mut got, &mut want);
            }
        }
    }

    #[test]
    fn incremental_prescan_equals_one_shot() {
        // The scanner feeds the prescan refill-sized pieces; splitting at
        // arbitrary points must not change the recorded positions.
        let doc = b"<books>\n  <book id=\"1\" title='a>b'>&lt;text</book>\n</books>";
        for split in 0..doc.len() {
            let mut got = StructuralIndex::new();
            prescan(&doc[..split], 0, &mut got);
            prescan(&doc[split..], split as u64, &mut got);
            let mut want = naive(doc, 0);
            assert_same(&mut got, &mut want);
        }
    }
}
