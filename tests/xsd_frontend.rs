//! End-to-end tests of the XML Schema frontend (the paper's footnote 1):
//! the same query compiled against an XSD equivalent of Figure 1 yields the
//! same fully-streaming plan and the same results as the DTD version.

use fluxquery::{FluxEngine, Options, PAPER_FIG1_DTD};

const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

const FIG1_XSD: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="bib">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="book" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:choice>
                <xs:element name="author" type="xs:string" maxOccurs="unbounded"/>
                <xs:element name="editor" type="xs:string" maxOccurs="unbounded"/>
              </xs:choice>
              <xs:element name="publisher" type="xs:string"/>
              <xs:element name="price" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

const DOC: &str = "<bib><book><title>T1</title><author>A1</author><author>A2</author><publisher>P</publisher><price>9</price></book></bib>";

#[test]
fn xsd_gives_same_streaming_plan_as_dtd() {
    let from_xsd = FluxEngine::compile_with_schema(Q3, FIG1_XSD, &Options::default()).unwrap();
    let from_dtd =
        FluxEngine::compile_with_schema(Q3, PAPER_FIG1_DTD, &Options::default()).unwrap();
    assert_eq!(
        from_xsd.buffered_handler_count(),
        0,
        "{}",
        from_xsd.explain()
    );
    assert_eq!(
        from_xsd.buffered_handler_count(),
        from_dtd.buffered_handler_count()
    );
}

#[test]
fn xsd_engine_produces_identical_output() {
    let from_xsd = FluxEngine::compile_with_schema(Q3, FIG1_XSD, &Options::default()).unwrap();
    let from_dtd =
        FluxEngine::compile_with_schema(Q3, PAPER_FIG1_DTD, &Options::default()).unwrap();
    let (out_xsd, _) = from_xsd.run_to_string(DOC).unwrap();
    let (out_dtd, _) = from_dtd.run_to_string(DOC).unwrap();
    assert_eq!(out_xsd, out_dtd);
    assert!(out_xsd.contains("<title>T1</title>"));
}

#[test]
fn xsd_validation_enforced() {
    let engine = FluxEngine::compile_with_schema(Q3, FIG1_XSD, &Options::default()).unwrap();
    // Author before title violates the schema's sequence.
    let bad = "<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>9</price></book></bib>";
    let mut out = Vec::new();
    assert!(engine.run(bad.as_bytes(), &mut out).is_err());
}

#[test]
fn goedel_optimization_from_xsd() {
    // The language constraint (author xor editor) must also be derived
    // from the XSD's xs:choice.
    let q = r#"<out>{ for $b in $ROOT/bib/book return
        if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit/> else () }</out>"#;
    let engine = FluxEngine::compile_with_schema(q, FIG1_XSD, &Options::default()).unwrap();
    assert!(
        engine.query().algebra_trace.iter().any(|r| r.rule == "R2"),
        "{:?}",
        engine.query().algebra_trace
    );
}
