//! # fluxquery-core
//!
//! The public API of the FluXQuery engine: compile an XQuery against a DTD,
//! run it over XML streams, inspect the optimizer's decisions, and compare
//! against the two baseline architectures from the paper's evaluation.
//!
//! ```
//! use fluxquery_core::{FluxEngine, Options};
//!
//! let dtd = "<!ELEMENT bib (book)*>
//!            <!ELEMENT book (title|author)*>
//!            <!ELEMENT title (#PCDATA)>
//!            <!ELEMENT author (#PCDATA)>";
//! let query = r#"<results>{ for $b in $ROOT/bib/book return
//!                  <result>{$b/title}{$b/author}</result> }</results>"#;
//! let engine = FluxEngine::compile(query, dtd, &Options::default()).unwrap();
//! let mut out = Vec::new();
//! let stats = engine
//!     .run("<bib><book><author>A</author><title>T</title></book></bib>".as_bytes(), &mut out)
//!     .unwrap();
//! assert_eq!(
//!     String::from_utf8(out).unwrap(),
//!     "<results><result><title>T</title><author>A</author></result></results>"
//! );
//! assert!(stats.peak_buffer_bytes > 0); // the author was buffered
//! ```

pub mod engine;
pub mod error;

pub use engine::{AnyEngine, EngineKind, FluxEngine, Options, Parallelism};
pub use error::{Error, Result};

// Re-export the building blocks for advanced users.
pub use flux_baseline::{DomEngine, ProjectionEngine};
pub use flux_dtd::{Dtd, Symbol, SymbolTable, PAPER_FIG1_DTD, PAPER_UNSAFE_DTD, PAPER_WEAK_DTD};
pub use flux_lang::{CompileOptions, FluxQuery, OptimizerConfig};
pub use flux_runtime::{RunReport, RunStats};
pub use flux_xml::{
    BudgetExceeded, BudgetKind, GzipMode, Input, MemoryBudget, ResolvedInput, DEFAULT_WINDOW,
};
pub use flux_xsax::XsaxConfig;
