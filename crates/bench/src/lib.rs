//! # flux-bench
//!
//! The experiment harness: the query catalog, workload generators and
//! engine runners shared by the Criterion benches, the `experiments`
//! binary (which regenerates every table/figure of EXPERIMENTS.md) and the
//! workspace integration tests.

use flux_xmlgen::{auction_string, bib_string, AuctionConfig, BibConfig, AUCTION_DTD};
use fluxquery_core::{EngineKind, Error, Input, Options, RunStats};

pub mod workloads;

pub use workloads::{workload, workloads, Workload};

/// Which generated corpus a query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Bibliography under the weak DTD `book (title|author)*`.
    BibWeak,
    /// Bibliography under the Figure 1 DTD.
    BibFig1,
    /// XMark-style auction site.
    Auction,
}

impl Domain {
    pub fn dtd(self) -> &'static str {
        match self {
            Domain::BibWeak => fluxquery_core::PAPER_WEAK_DTD,
            Domain::BibFig1 => fluxquery_core::PAPER_FIG1_DTD,
            Domain::Auction => AUCTION_DTD,
        }
    }

    /// Generates a document of roughly `scale` × the base size.
    pub fn document(self, scale: f64, seed: u64) -> String {
        match self {
            Domain::BibWeak => {
                let books = ((100.0 * scale).ceil() as usize).max(1);
                bib_string(&BibConfig::weak(books, seed))
            }
            Domain::BibFig1 => {
                let books = ((100.0 * scale).ceil() as usize).max(1);
                bib_string(&BibConfig::fig1(books, seed))
            }
            Domain::Auction => auction_string(&AuctionConfig::scale(scale, seed)),
        }
    }
}

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct CatalogQuery {
    pub id: &'static str,
    pub description: &'static str,
    pub query: &'static str,
    pub domain: Domain,
}

/// XMP Q3 — the paper's running example.
pub const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

/// The query catalog: XMP-style use-case queries in the supported fragment
/// plus auction workloads. Ids reference the XML Query Use Cases where a
/// direct counterpart exists.
pub fn catalog() -> Vec<CatalogQuery> {
    vec![
        CatalogQuery {
            id: "XMP-Q1",
            description: "books published after 1995 (attribute filter)",
            query: r#"<bib>{ for $b in $ROOT/bib/book where $b/@year > 1995 return <book year="{$b/@year}">{$b/title}</book> }</bib>"#,
            domain: Domain::BibFig1,
        },
        CatalogQuery {
            id: "XMP-Q2",
            description: "flat title/author pairs (nested loops)",
            query: r#"<results>{ for $b in $ROOT/bib/book return for $t in $b/title return for $a in $b/author return <result>{$t}{$a}</result> }</results>"#,
            domain: Domain::BibWeak,
        },
        CatalogQuery {
            id: "XMP-Q3",
            description: "titles and authors grouped per book (the paper's example)",
            query: Q3,
            domain: Domain::BibWeak,
        },
        CatalogQuery {
            id: "XMP-Q3s",
            description: "Q3 under the strong Figure 1 DTD (fully streaming)",
            query: Q3,
            domain: Domain::BibFig1,
        },
        CatalogQuery {
            id: "Q3-REV",
            description: "authors before titles (forces buffering of titles)",
            query: r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/author}{$b/title}</result> }</results>"#,
            domain: Domain::BibWeak,
        },
        CatalogQuery {
            id: "FILTER",
            description: "whole books with a matching author (conditional copy)",
            query: r#"<hits>{ for $b in $ROOT/bib/book return if (exists($b/author)) then $b else () }</hits>"#,
            domain: Domain::BibWeak,
        },
        CatalogQuery {
            id: "PRICES",
            description: "cheap books: title and price (streaming under Fig. 1)",
            query: r#"<cheap>{ for $b in $ROOT/bib/book where $b/price < 30 return <offer>{$b/title}{$b/price}</offer> }</cheap>"#,
            domain: Domain::BibFig1,
        },
        CatalogQuery {
            id: "AUC-JOIN",
            description: "buyer names joined to closed auctions (value join)",
            query: r#"<sales>{ for $s in $ROOT/site return for $a in $s/closed_auctions/closed_auction, $p in $s/people/person where $a/buyer = $p/@id return <sale>{$p/name}{$a/price}</sale> }</sales>"#,
            domain: Domain::Auction,
        },
        CatalogQuery {
            id: "AUC-EXP",
            description: "expensive auctions (price > 400)",
            query: r#"<expensive>{ for $s in $ROOT/site return for $a in $s/closed_auctions/closed_auction where $a/price > 400 return <hit>{$a/itemref}{$a/price}</hit> }</expensive>"#,
            domain: Domain::Auction,
        },
    ]
}

/// Looks up a catalog query by id.
pub fn catalog_query(id: &str) -> CatalogQuery {
    catalog()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("unknown catalog query {id}"))
}

/// The result of one engine run.
pub struct RunOutcome {
    pub output: Vec<u8>,
    pub stats: RunStats,
}

/// Compiles and runs one engine on one document.
pub fn run_engine(
    kind: EngineKind,
    query: &str,
    dtd: &str,
    document: &[u8],
) -> Result<RunOutcome, Error> {
    run_engine_with(kind, query, dtd, document, &Options::new())
}

/// Compiles and runs one engine on one document with explicit execution
/// options (interner bound, shard count, …).
pub fn run_engine_with(
    kind: EngineKind,
    query: &str,
    dtd: &str,
    document: &[u8],
    options: &Options,
) -> Result<RunOutcome, Error> {
    run_engine_input(
        kind,
        query,
        dtd,
        Input::from_bytes(document.to_vec()),
        options,
    )
}

/// Compiles and runs one engine over a unified [`Input`] — the harness
/// entry point for streamed (generator- or file-backed) workloads, where
/// the document must never be materialised.
pub fn run_engine_input(
    kind: EngineKind,
    query: &str,
    dtd: &str,
    input: Input,
    options: &Options,
) -> Result<RunOutcome, Error> {
    let engine = options.compile(kind, query, dtd)?;
    let mut output = Vec::new();
    let stats = engine.run_input(input, &mut output)?;
    Ok(RunOutcome { output, stats })
}

/// Formats a byte count for tables.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1_048_576 {
        format!("{:.1} MiB", bytes as f64 / 1_048_576.0)
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxquery_core::AnyEngine;

    #[test]
    fn catalog_compiles_on_all_engines() {
        for q in catalog() {
            for kind in EngineKind::all() {
                AnyEngine::compile(kind, q.query, q.domain.dtd())
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", q.id, kind.label()));
            }
        }
    }

    #[test]
    fn catalog_runs_and_agrees() {
        for q in catalog() {
            let doc = q.domain.document(0.3, 11);
            let mut reference: Option<Vec<u8>> = None;
            for kind in EngineKind::all() {
                let outcome = run_engine(kind, q.query, q.domain.dtd(), doc.as_bytes())
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", q.id, kind.label()));
                match &reference {
                    None => reference = Some(outcome.output),
                    Some(expected) => assert_eq!(
                        &outcome.output,
                        expected,
                        "{} disagrees on {}",
                        kind.label(),
                        q.id
                    ),
                }
            }
        }
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(12), "12 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1_048_576), "3.0 MiB");
    }
}
