//! # fluxquery
//!
//! A Rust implementation of **FluXQuery** — *an optimizing XQuery processor
//! for streaming XML data* (Koch, Scherzinger, Schweikardt, Stegmaier,
//! VLDB 2004).
//!
//! FluXQuery compiles XQuery into **FluX**, an internal language whose
//! `process-stream` construct makes buffering explicit, and uses DTD-derived
//! constraints — order, cardinality, and language (co-occurrence)
//! constraints — to schedule as much of the query as possible as pure
//! streaming handlers. What cannot stream is buffered with projection, and
//! only for the lifetime of its scope.
//!
//! ## Quick start
//!
//! ```
//! use fluxquery::{FluxEngine, Options};
//!
//! // The paper's Figure 1 DTD: titles always precede authors.
//! let dtd = fluxquery::PAPER_FIG1_DTD;
//! let query = r#"<results>{ for $b in $ROOT/bib/book return
//!                  <result>{$b/title}{$b/author}</result> }</results>"#;
//!
//! let engine = FluxEngine::compile(query, dtd, &Options::default()).unwrap();
//! assert_eq!(engine.buffered_handler_count(), 0); // fully streaming!
//!
//! let doc = "<bib><book><title>T</title><author>A</author>\
//!            <publisher>P</publisher><price>9</price></book></bib>";
//! let (out, stats) = engine.run_to_string(doc).unwrap();
//! assert_eq!(out, "<results><result><title>T</title><author>A</author></result></results>");
//! # let _ = stats;
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`symbols`] | interned `Symbol`/`SymbolTable` foundation |
//! | [`xml`] | streaming parser (recycled interned events), writer, arena tree |
//! | [`dtd`] | content-model automata and schema constraints |
//! | [`xsax`] | symbol-native validating SAX parser with `on-first` events |
//! | [`xquery`] | frontend, normal form, tree interpreter |
//! | [`lang`] | FluX, algebraic optimizer, scheduler, safety |
//! | [`runtime`] | BDF, buffer store, streamed evaluator |
//! | [`shard`] | parallel sharded streaming pipeline (`ShardedReader`) |
//! | [`baseline`] | DOM and projection comparison engines |
//! | [`xmlgen`] | seeded data generators |

pub use fluxquery_core::*;

pub use flux_baseline as baseline;
pub use flux_dtd as dtd;
pub use flux_lang as lang;
pub use flux_runtime as runtime;
pub use flux_shard as shard;
pub use flux_symbols as symbols;
pub use flux_xml as xml;
pub use flux_xmlgen as xmlgen;
pub use flux_xquery as xquery;
pub use flux_xsax as xsax;
