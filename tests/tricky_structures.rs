//! Stress tests for document shapes that exercise corner cases of the
//! runtime: recursive element types, mixed content, CDATA, deeply nested
//! scopes, entity references, and queries needing several past-queries on
//! one element type.

use flux_bench::run_engine;
use fluxquery::{EngineKind, FluxEngine, Options};

fn agree(query: &str, dtd: &str, doc: &str) -> String {
    let mut reference: Option<Vec<u8>> = None;
    for kind in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom] {
        let outcome = run_engine(kind, query, dtd, doc.as_bytes())
            .unwrap_or_else(|e| panic!("{} failed: {e}\nquery: {query}", kind.label()));
        match &reference {
            None => reference = Some(outcome.output),
            Some(expected) => assert_eq!(
                String::from_utf8_lossy(&outcome.output),
                String::from_utf8_lossy(expected),
                "{} diverged on {query}",
                kind.label()
            ),
        }
    }
    String::from_utf8(reference.expect("ran")).expect("utf8")
}

#[test]
fn recursive_sections() {
    let dtd = "<!ELEMENT doc (section)*>\n<!ELEMENT section (head, section?, tail?)>\n<!ELEMENT head (#PCDATA)>\n<!ELEMENT tail (#PCDATA)>";
    let doc = "<doc><section><head>h1</head><section><head>h2</head><section><head>h3</head></section><tail>t2</tail></section><tail>t1</tail></section></doc>";
    // Heads of top-level sections plus their direct subsection heads.
    let q = r#"<outline>{ for $s in $ROOT/doc/section return <top>{$s/head}{ for $sub in $s/section return $sub/head }</top> }</outline>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(
        out,
        "<outline><top><head>h1</head><head>h2</head></top></outline>"
    );
}

#[test]
fn recursion_with_whole_copies() {
    let dtd =
        "<!ELEMENT doc (section)*>\n<!ELEMENT section (head, section?)>\n<!ELEMENT head (#PCDATA)>";
    let doc = "<doc><section><head>a</head><section><head>b</head></section></section><section><head>c</head></section></doc>";
    let q =
        r#"<r>{ for $s in $ROOT/doc/section return for $inner in $s/section return $inner }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><section><head>b</head></section></r>");
}

#[test]
fn mixed_content_streams() {
    let dtd = "<!ELEMENT doc (para)*>\n<!ELEMENT para (#PCDATA | em)*>\n<!ELEMENT em (#PCDATA)>";
    let doc = "<doc><para>one <em>two</em> three</para><para>plain</para></doc>";
    let q = r#"<r>{ for $p in $ROOT/doc/para return <p>{$p/em}</p> }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><p><em>two</em></p><p></p></r>");
}

#[test]
fn mixed_content_text_extraction() {
    let dtd = "<!ELEMENT doc (para)*>\n<!ELEMENT para (#PCDATA | em)*>\n<!ELEMENT em (#PCDATA)>";
    let doc = "<doc><para>one <em>two</em> three</para></doc>";
    // text() of the para: only the direct text children, not em's text.
    let q = r#"<r>{ for $p in $ROOT/doc/para return <t>{$p/text()}</t> }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><t>one  three</t></r>");
}

#[test]
fn whole_copy_of_mixed_content() {
    let dtd = "<!ELEMENT doc (para)*>\n<!ELEMENT para (#PCDATA | em)*>\n<!ELEMENT em (#PCDATA)>";
    let doc = "<doc><para>one <em>two</em> three</para></doc>";
    let q = r#"<r>{ for $p in $ROOT/doc/para return $p }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><para>one <em>two</em> three</para></r>");
}

#[test]
fn cdata_and_entities_flow_through() {
    let dtd = "<!ELEMENT doc (item)*>\n<!ELEMENT item (#PCDATA)>";
    let doc = "<doc><item>a &amp; b</item><item><![CDATA[x < y & z]]></item></doc>";
    let q = r#"<r>{ for $i in $ROOT/doc/item return $i }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(
        out,
        "<r><item>a &amp; b</item><item>x &lt; y &amp; z</item></r>"
    );
}

#[test]
fn several_buffered_items_one_element_type() {
    // Three buffered items per book, each with a different past-set.
    let dtd = fluxquery::PAPER_FIG1_DTD;
    let doc = "<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book></bib>";
    let q = r#"<r>{ for $b in $ROOT/bib/book return
        <x>{$b/price}{$b/publisher}{$b/author}{$b/title}</x> }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(
        out,
        "<r><x><price>9</price><publisher>P</publisher><author>A</author><title>T</title></x></r>"
    );
}

#[test]
fn deeply_nested_scopes() {
    let dtd = "<!ELEMENT l0 (l1)*>\n<!ELEMENT l1 (l2)*>\n<!ELEMENT l2 (l3)*>\n<!ELEMENT l3 (l4)*>\n<!ELEMENT l4 (#PCDATA)>";
    let mut doc = String::from("<l0>");
    for i in 0..3 {
        doc.push_str(&format!(
            "<l1><l2><l3><l4>leaf{i}</l4><l4>extra{i}</l4></l3></l2></l1>"
        ));
    }
    doc.push_str("</l0>");
    let q = r#"<r>{ for $a in $ROOT/l0/l1 return for $b in $a/l2 return for $c in $b/l3 return for $d in $c/l4 return $d }</r>"#;
    let out = agree(q, dtd, &doc);
    assert_eq!(out.matches("<l4>").count(), 6);
}

#[test]
fn interleaved_buffer_and_stream_same_label() {
    // title both streamed (first item) and buffered (third item reads it
    // again) — the interleaved-arena regression scenario.
    let dtd = fluxquery::PAPER_WEAK_DTD;
    let doc = "<bib><book><title>T1</title><author>A</author><title>T2</title></book></bib>";
    let q = r#"<r>{ for $b in $ROOT/bib/book return <x>{$b/title}{$b/author}{$b/title}</x> }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(
        out,
        "<r><x><title>T1</title><title>T2</title><author>A</author><title>T1</title><title>T2</title></x></r>"
    );
}

#[test]
fn empty_elements_and_empty_results() {
    let dtd =
        "<!ELEMENT doc (entry)*>\n<!ELEMENT entry EMPTY>\n<!ATTLIST entry id CDATA #REQUIRED>";
    let doc = r#"<doc><entry id="1"/><entry id="2"/></doc>"#;
    let q = r#"<r>{ for $e in $ROOT/doc/entry return <id>{$e/@id}</id> }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><id>1</id><id>2</id></r>");
}

#[test]
fn condition_on_deep_path() {
    let dtd = "<!ELEMENT lib (shelf)*>\n<!ELEMENT shelf (book)*>\n<!ELEMENT book (title, note?)>\n<!ELEMENT title (#PCDATA)>\n<!ELEMENT note (#PCDATA)>";
    let doc = "<lib><shelf><book><title>K</title><note>rare</note></book><book><title>L</title></book></shelf></lib>";
    let q = r#"<r>{ for $s in $ROOT/lib/shelf return for $b in $s/book return if (exists($b/note)) then $b/title else () }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><title>K</title></r>");
}

#[test]
fn output_attribute_from_buffered_sibling() {
    // Attribute template on a constructed element reading buffered data.
    let dtd = fluxquery::PAPER_FIG1_DTD;
    let doc = "<bib><book><title>T</title><author>A</author><publisher>Pub</publisher><price>5</price></book></bib>";
    let q = r#"<r>{ for $b in $ROOT/bib/book return for $p in $b/price return <offer from="{$b/publisher}">{$p}</offer> }</r>"#;
    // publisher precedes price under Fig. 1: the price loop streams and the
    // publisher buffer is complete when the offer opens.
    let out = agree(q, dtd, doc);
    assert_eq!(out, r#"<r><offer from="Pub"><price>5</price></offer></r>"#);
}

#[test]
fn flux_memory_stays_small_on_recursion() {
    // Only direct children of the outermost sections are needed; inner
    // recursion levels must not be buffered.
    let dtd =
        "<!ELEMENT doc (section)*>\n<!ELEMENT section (head, section?)>\n<!ELEMENT head (#PCDATA)>";
    let mut inner = String::from("<head>deep</head>");
    for i in (0..60).rev() {
        inner = format!("<head>h{i}</head><section>{inner}</section>");
    }
    let doc = format!("<doc><section>{inner}</section></doc>");
    let q = r#"<r>{ for $s in $ROOT/doc/section return $s/head }</r>"#;
    let engine = FluxEngine::compile(q, dtd, &Options::default()).unwrap();
    let (out, stats) = engine.run_to_string(&doc).unwrap();
    assert_eq!(out, "<r><head>h0</head></r>");
    assert!(
        stats.peak_buffer_bytes < 2500,
        "recursion depth must not inflate buffers: {}",
        stats.peak_buffer_bytes
    );
}

#[test]
fn text_dependency_defers_to_close() {
    // {$p/text()} then {$p/em}: text can arrive until the close tag in
    // mixed content, so both items buffer and fire at </para> — in query
    // order, not stream order.
    let dtd = "<!ELEMENT doc (para)*>\n<!ELEMENT para (#PCDATA | em)*>\n<!ELEMENT em (#PCDATA)>";
    let doc = "<doc><para><em>first</em>mid<em>last</em>tail</para></doc>";
    let q = r#"<r>{ for $p in $ROOT/doc/para return <x>{$p/text()}{$p/em}</x> }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><x>midtail<em>first</em><em>last</em></x></r>");
}

#[test]
fn attribute_only_queries_buffer_nothing() {
    let dtd = "<!ELEMENT list (e)*>\n<!ELEMENT e EMPTY>\n<!ATTLIST e v CDATA #REQUIRED>";
    let mut doc = String::from("<list>");
    for i in 0..2000 {
        doc.push_str(&format!("<e v=\"{i}\"/>"));
    }
    doc.push_str("</list>");
    let q = r#"<r>{ for $e in $ROOT/list/e return <n>{$e/@v}</n> }</r>"#;
    let engine = FluxEngine::compile(q, dtd, &Options::default()).unwrap();
    let (out, stats) = engine.run_to_string(&doc).unwrap();
    assert_eq!(out.matches("<n>").count(), 2000);
    assert!(
        stats.peak_buffer_bytes < 400,
        "attribute reads need only the scope shell: {}",
        stats.peak_buffer_bytes
    );
}

#[test]
fn unicode_content_through_engine() {
    let dtd = "<!ELEMENT doc (w)*>\n<!ELEMENT w (#PCDATA)>";
    let doc = "<doc><w>grüße</w><w>日本語</w><w>&#x1F4A1;</w></doc>";
    let q = r#"<r>{ for $w in $ROOT/doc/w return $w }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<r><w>grüße</w><w>日本語</w><w>💡</w></r>");
}

#[test]
fn optional_elements_absent_and_present() {
    let dtd = "<!ELEMENT doc (rec)*>\n<!ELEMENT rec (a, b?, c?)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c (#PCDATA)>";
    let doc = "<doc><rec><a>1</a></rec><rec><a>2</a><c>x</c></rec><rec><a>3</a><b>y</b><c>z</c></rec></doc>";
    // Query order b-then-a is the reverse of stream order: b buffers.
    let q = r#"<r>{ for $x in $ROOT/doc/rec return <o>{$x/b}{$x/a}</o> }</r>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(
        out,
        "<r><o><a>1</a></o><o><a>2</a></o><o><b>y</b><a>3</a></o></r>"
    );
}

#[test]
fn output_nests_deeper_than_input() {
    let dtd = "<!ELEMENT doc (v)*>\n<!ELEMENT v (#PCDATA)>";
    let doc = "<doc><v>1</v><v>2</v></doc>";
    let q = r#"<a><b><c>{ for $v in $ROOT/doc/v return <d><e>{$v/text()}</e></d> }</c></b></a>"#;
    let out = agree(q, dtd, doc);
    assert_eq!(out, "<a><b><c><d><e>1</e></d><d><e>2</e></d></c></b></a>");
}
