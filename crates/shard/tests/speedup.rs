//! Sharding must actually be faster on real parallel hardware.
//!
//! The recording container for `BENCH_events.json` has historically
//! exposed a single core, so the sharded path's speedup was never
//! exercised outside of correctness tests. This test runs wherever the
//! host grants ≥ 2 units of parallelism (the CI multi-core job does) and
//! asserts that 2-shard pipelined wall time beats 1-shard wall time on a
//! document large enough for parsing to dominate. On a 1-core host it
//! skips with a notice instead of flaking.

use flux_shard::{ShardConfig, ShardedReader};
use flux_xmlgen::{bib_string, BibConfig};
use std::time::{Duration, Instant};

/// Best-of-`runs` wall time to fully consume the document at the given
/// shard count (input buffer cloned outside the timed region).
fn best_consume_time(bytes: &[u8], shards: usize, runs: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let config = ShardConfig::new(shards);
        let mut reader = ShardedReader::new(bytes.to_vec(), config);
        let start = Instant::now();
        let mut events = 0u64;
        while reader.advance().expect("well-formed input") {
            events += 1;
        }
        assert!(events > 0);
        best = best.min(start.elapsed());
    }
    best
}

#[test]
fn two_shards_beat_one_on_multicore() {
    if cfg!(debug_assertions) {
        // A wall-clock race is only meaningful on optimized builds; in the
        // plain `cargo test` job the debug-build overhead plus shared-
        // runner noise would make this a flake vector. The CI
        // `shard-multicore` job runs the suite with `--release`.
        eprintln!("skipping: wall-clock speedup is asserted on release builds only");
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping: host exposes {cores} core(s); sharding speedup needs >= 2");
        return;
    }
    // ~6 MB of bibliography: tens of milliseconds of parse work per run,
    // enough for the parallel win to dwarf scheduler noise.
    let doc = bib_string(&BibConfig::weak(25_000, 7));
    assert!(doc.len() > 4 << 20, "document too small: {}", doc.len());
    let bytes = doc.into_bytes();
    // Warm up both paths (page cache, thread spawn, lazy init).
    let _ = best_consume_time(&bytes, 1, 1);
    let _ = best_consume_time(&bytes, 2, 1);
    let one = best_consume_time(&bytes, 1, 5);
    let two = best_consume_time(&bytes, 2, 5);
    eprintln!("1 shard: {one:?}, 2 shards: {two:?} ({cores} cores)");
    assert!(
        two < one,
        "2 shards ({two:?}) must beat 1 shard ({one:?}) on a {cores}-core host"
    );
}
