//! Safety checking of FluX queries against a DTD (paper Sec. 2).
//!
//! A FluX query is **safe** when every XQuery subexpression only refers to
//! paths whose data is guaranteed complete at the moment the expression
//! runs:
//!
//! * inside `on-first past(L)`, a path `$x/c` on the process-stream
//!   variable is safe iff the DTD implies *past(L) ⟹ past(c)* — at every
//!   reachable automaton state where no `L`-label can occur, `c` cannot
//!   occur either (the paper's example: replacing `$book/author` by
//!   `$book/price` under `((title|author)*, price)` is unsafe);
//! * outer-variable paths `$w/q` read while the stream is inside a
//!   `g`-child of `$w` are safe iff `all_before(type(w), q, g)` with
//!   `q ≠ g`;
//! * whole-subtree uses require `past(*)`; text reads require the element
//!   to forbid text, or the handler to wait for text.
//!
//! The checker is deliberately **independent** of the scheduler: it
//! re-derives every guarantee from the DTD, so scheduler bugs surface as
//! safety errors instead of wrong answers.

use crate::ast::{FluxExpr, Handler, PastSet};
use crate::error::{FluxError, Result};
use flux_dtd::{Dfa, Dtd, Symbol, SymbolTable};
use flux_xquery::{deps_on, paths_rooted_at, AttrPart, DepSet, Expr, VarName, ROOT_VAR};

#[derive(Debug, Clone)]
struct Scope {
    var: VarName,
    symbol: Option<Symbol>,
    trigger: Option<String>,
    /// The past-set in force for buffered evaluation at this position
    /// (`None` while streaming, `Some` inside an `on-first` body).
    past: Option<PastSet>,
}

/// Checks a FluX query; returns all violations.
pub fn check_safety(flux: &FluxExpr, dtd: &Dtd) -> Result<()> {
    let mut checker = Checker {
        dtd,
        violations: Vec::new(),
    };
    let mut scopes = vec![Scope {
        var: ROOT_VAR.to_string(),
        symbol: Some(SymbolTable::DOCUMENT),
        trigger: None,
        past: None,
    }];
    checker.check(flux, &mut scopes);
    if checker.violations.is_empty() {
        Ok(())
    } else {
        Err(FluxError::Unsafe {
            message: checker.violations.join("; "),
        })
    }
}

struct Checker<'d> {
    dtd: &'d Dtd,
    violations: Vec<String>,
}

impl<'d> Checker<'d> {
    fn check(&mut self, expr: &FluxExpr, scopes: &mut Vec<Scope>) {
        match expr {
            FluxExpr::Empty | FluxExpr::StringLit(_) => {}
            FluxExpr::StreamCopy(v) => {
                let innermost = scopes.last().expect("nonempty");
                if *v != innermost.var || innermost.trigger.is_none() {
                    self.violations
                        .push(format!("stream-copy of ${v} outside its own on-handler"));
                }
            }
            FluxExpr::Sequence(items) => {
                for item in items {
                    self.check(item, scopes);
                }
            }
            FluxExpr::Element {
                attributes,
                content,
                ..
            } => {
                for attr in attributes {
                    for part in &attr.value {
                        if let AttrPart::Expr(e) = part {
                            self.check_buffered(e, scopes, "attribute template");
                        }
                    }
                }
                self.check(content, scopes);
            }
            FluxExpr::ProcessStream { var, handlers } => {
                let innermost = scopes.last().expect("nonempty");
                if *var != innermost.var {
                    self.violations.push(format!(
                        "process-stream ${var} does not match the innermost scope ${}",
                        innermost.var
                    ));
                    return;
                }
                // A child's stream region can feed at most one spine body:
                // once an `on` handler with a process-stream/stream-copy
                // body consumed a label, no later `on` handler may share it.
                let mut spine_labels: std::collections::BTreeSet<&str> =
                    std::collections::BTreeSet::new();
                for handler in handlers {
                    if let Handler::On { label, body, .. } = handler {
                        if spine_labels.contains(label.as_str()) {
                            self.violations.push(format!(
                                "two on-handlers stream label `{label}`, but an earlier one consumes the region"
                            ));
                        }
                        if body.has_spine() {
                            spine_labels.insert(label.as_str());
                        }
                    }
                }
                for handler in handlers {
                    match handler {
                        Handler::On {
                            label,
                            var: v,
                            body,
                        } => {
                            scopes.push(Scope {
                                var: v.clone(),
                                symbol: self.dtd.lookup(label),
                                trigger: Some(label.clone()),
                                past: None,
                            });
                            self.check(body, scopes);
                            scopes.pop();
                        }
                        Handler::OnFirstPast { labels, body } => {
                            let saved = scopes.last().expect("nonempty").past.clone();
                            scopes.last_mut().expect("nonempty").past = Some(labels.clone());
                            self.check(body, scopes);
                            scopes.last_mut().expect("nonempty").past = saved;
                        }
                    }
                }
            }
            FluxExpr::Buffered(e) => {
                self.check_buffered(e, scopes, "buffered expression");
            }
        }
    }

    /// Checks an XQuery expression evaluated at the current position.
    fn check_buffered(&mut self, e: &Expr, scopes: &[Scope], what: &str) {
        // Innermost scope: data must be implied-past by the active past-set.
        let innermost = scopes.last().expect("nonempty");
        let deps = deps_on(e, &innermost.var);
        let past = innermost.past.clone().unwrap_or_default();
        if let Some(problem) = self.past_gap(&deps, &past, innermost) {
            self.violations.push(format!(
                "{what} reads {problem} of ${} not implied past by {past}",
                innermost.var
            ));
        }
        // Outer scopes: static order constraints.
        for i in 0..scopes.len() - 1 {
            let w = &scopes[i];
            let next = &scopes[i + 1];
            let wdeps = deps_on(e, &w.var);
            if !self.outer_complete(&wdeps, w, next) {
                let paths: Vec<String> = paths_rooted_at(e, &w.var)
                    .iter()
                    .map(|p| p.to_string())
                    .collect();
                self.violations.push(format!(
                    "{what} reads {} while inside a child of ${}, with no order constraint guaranteeing completeness",
                    paths.join(", "),
                    w.var
                ));
            }
        }
    }

    /// Returns a description of the first dependency not implied past.
    fn past_gap(&self, deps: &DepSet, past: &PastSet, scope: &Scope) -> Option<String> {
        if deps.needs_no_children() {
            return None;
        }
        if past.all {
            return None; // fires at close: everything is complete
        }
        if deps.whole {
            return Some("the whole subtree".to_string());
        }
        let Some(sym) = scope.symbol else {
            return Some("children of an undeclared element".to_string());
        };
        let decl = match self.dtd.element(sym) {
            Some(d) => Some(d),
            None if sym == SymbolTable::DOCUMENT => None,
            None => return Some("children of an undeclared element".to_string()),
        };
        let text_allowed = decl.is_some_and(|d| d.text_allowed);
        let dfa = match self.dtd.content_dfa(sym) {
            Some(d) => d,
            None => return Some("children of an element with no content model".to_string()),
        };
        // A past-set that waits for text in a text-allowed element can only
        // fire at the closing tag — everything is complete then.
        let fires_only_at_close = past.text && text_allowed;
        if fires_only_at_close {
            return None;
        }
        if deps.text && text_allowed {
            return Some("text content".to_string());
        }
        for label in &deps.labels {
            let Some(c) = self.dtd.lookup(label) else {
                continue; // undeclared: never occurs, trivially past
            };
            if !self.past_implies(dfa, past, c) {
                return Some(format!("`$…/{label}`"));
            }
        }
        None
    }

    /// Does `past(L)` imply that all `c` children are **complete** at every
    /// possible firing seam of the `on-first past(L)` event?
    ///
    /// The check walks firing seams rather than states: the event fires at
    /// the first seam where `L` becomes impossible — either at the start
    /// tag, *before* a child whose label is outside `L` (that child is
    /// still unread!), *after* a child whose label is in `L`, or at the
    /// closing tag. `c` is complete at a seam iff no `c` can occur at or
    /// after it.
    fn past_implies(&self, dfa: &Dfa, past: &PastSet, c: Symbol) -> bool {
        let l_syms: Vec<Symbol> = past
            .labels
            .iter()
            .filter_map(|l| self.dtd.lookup(l))
            .collect();
        // Undeclared labels in L never occur and are dropped: they impose
        // no wait. An effectively-empty L fires right at the start tag.
        let l_impossible = |q: flux_dtd::StateId| -> bool {
            let still = dfa.still_possible(q);
            l_syms.iter().all(|l| !still.contains(l))
        };
        // Seam at the start tag.
        if l_impossible(dfa.start()) && dfa.still_possible(dfa.start()).contains(&c) {
            return false;
        }
        // Seams at child transitions: first-fire happens on edges where L
        // flips from possible to impossible.
        for q in 0..dfa.state_count() as flux_dtd::StateId {
            if l_impossible(q) {
                continue; // the event fired earlier on this run
            }
            for &(d, q_next) in dfa.transitions(q) {
                if !dfa.is_co_accessible(q_next) || !l_impossible(q_next) {
                    continue;
                }
                let fires_before_child = !l_syms.contains(&d);
                if fires_before_child && (c == d || dfa.still_possible(q_next).contains(&c)) {
                    // Fires before <d> is read; d itself or later children
                    // could be c's whose data is not yet buffered.
                    return false;
                }
                if !fires_before_child && dfa.still_possible(q_next).contains(&c) {
                    // Fires after </d>; only later c's are a problem.
                    return false;
                }
            }
        }
        // Runs where L stays possible to the end fire at the closing tag,
        // where everything is complete.
        true
    }

    /// Mirror of the scheduler's completeness rule for outer scopes.
    fn outer_complete(&self, deps: &DepSet, w: &Scope, next: &Scope) -> bool {
        if deps.needs_no_children() {
            return true;
        }
        if deps.whole {
            return false;
        }
        let Some(tw) = w.symbol else {
            return false;
        };
        let Some(g_label) = next.trigger.as_deref() else {
            return false;
        };
        let Some(g) = self.dtd.lookup(g_label) else {
            return false;
        };
        for q_label in &deps.labels {
            let Some(q) = self.dtd.lookup(q_label) else {
                continue;
            };
            if q == g || !self.dtd.all_before(tw, q, g) {
                return false;
            }
        }
        if deps.text && !self.dtd.all_before(tw, SymbolTable::TEXT, g) {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::Rewriter;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_UNSAFE_DTD, PAPER_WEAK_DTD};
    use flux_xquery::{normalize, parse_query, Path};

    fn scheduled(q: &str, dtd: &Dtd) -> FluxExpr {
        let nf = normalize(&parse_query(q).unwrap()).unwrap();
        Rewriter::new(dtd).rewrite(&nf).unwrap()
    }

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    #[test]
    fn scheduler_output_is_safe() {
        for dtd_text in [PAPER_WEAK_DTD, PAPER_FIG1_DTD, PAPER_UNSAFE_DTD] {
            let dtd = Dtd::parse(dtd_text).unwrap();
            let flux = scheduled(Q3, &dtd);
            check_safety(&flux, &dtd).expect("scheduled Q3 must be safe");
        }
    }

    #[test]
    fn paper_unsafe_example_detected() {
        // Hand-built unsafe FluX: under ((title|author)*, price), an
        // on-first past(title, author) handler reading $book/price fires
        // while the price buffer is still empty.
        let dtd = Dtd::parse(PAPER_UNSAFE_DTD).unwrap();
        let mut past = PastSet::default();
        past.insert_label("title");
        past.insert_label("author");
        let bad = FluxExpr::ProcessStream {
            var: "ROOT".into(),
            handlers: vec![Handler::On {
                label: "bib".into(),
                var: "bib".into(),
                body: FluxExpr::ProcessStream {
                    var: "bib".into(),
                    handlers: vec![Handler::On {
                        label: "book".into(),
                        var: "book".into(),
                        body: FluxExpr::ProcessStream {
                            var: "book".into(),
                            handlers: vec![Handler::OnFirstPast {
                                labels: past,
                                body: FluxExpr::Buffered(Expr::Path(
                                    Path::var("book").child("price"),
                                )),
                            }],
                        },
                    }],
                },
            }],
        };
        let err = check_safety(&bad, &dtd).unwrap_err();
        assert!(err.to_string().contains("price"), "{err}");
    }

    #[test]
    fn same_query_safe_under_fig1() {
        // Under Figure 1 (title,(author+|editor+),publisher,price), price
        // comes last... past(title,author) does NOT imply past(price):
        // price can still occur. Still unsafe!
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let mut past = PastSet::default();
        past.insert_label("title");
        past.insert_label("author");
        let q = FluxExpr::ProcessStream {
            var: "ROOT".into(),
            handlers: vec![Handler::On {
                label: "bib".into(),
                var: "bib".into(),
                body: FluxExpr::ProcessStream {
                    var: "bib".into(),
                    handlers: vec![Handler::On {
                        label: "book".into(),
                        var: "book".into(),
                        body: FluxExpr::ProcessStream {
                            var: "book".into(),
                            handlers: vec![Handler::OnFirstPast {
                                labels: past.clone(),
                                body: FluxExpr::Buffered(Expr::Path(
                                    Path::var("book").child("price"),
                                )),
                            }],
                        },
                    }],
                },
            }],
        };
        assert!(check_safety(&q, &dtd).is_err());

        // Reading $book/author under past(title,author) IS safe (the
        // paper's safe example).
        let safe = FluxExpr::ProcessStream {
            var: "ROOT".into(),
            handlers: vec![Handler::On {
                label: "bib".into(),
                var: "bib".into(),
                body: FluxExpr::ProcessStream {
                    var: "bib".into(),
                    handlers: vec![Handler::On {
                        label: "book".into(),
                        var: "book".into(),
                        body: FluxExpr::ProcessStream {
                            var: "book".into(),
                            handlers: vec![Handler::OnFirstPast {
                                labels: past,
                                body: FluxExpr::Buffered(Expr::Path(
                                    Path::var("book").child("author"),
                                )),
                            }],
                        },
                    }],
                },
            }],
        };
        check_safety(&safe, &dtd).expect("author read is safe");
    }

    #[test]
    fn stream_copy_outside_handler_rejected() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let bad = FluxExpr::StreamCopy("ROOT".into());
        assert!(check_safety(&bad, &dtd).is_err());
    }

    #[test]
    fn mismatched_process_stream_rejected() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let bad = FluxExpr::ProcessStream {
            var: "nobody".into(),
            handlers: vec![],
        };
        assert!(check_safety(&bad, &dtd).is_err());
    }

    #[test]
    fn scheduler_outputs_safe_across_catalog() {
        let queries = [
            r#"<r>{ for $b in $ROOT/bib/book return <x>{$b/author}{$b/title}</x> }</r>"#,
            r#"<r>{ for $b in $ROOT/bib/book return <x>{$b}{$b/title}</x> }</r>"#,
            r#"<r>{ for $b in $ROOT/bib/book return if ($b/author = "K") then $b/title else () }</r>"#,
            r#"<r>{ for $b in $ROOT/bib/book return for $t in $b/title return <y>{$t}{$b/author}</y> }</r>"#,
        ];
        for dtd_text in [PAPER_WEAK_DTD, PAPER_FIG1_DTD] {
            let dtd = Dtd::parse(dtd_text).unwrap();
            for q in queries {
                let flux = scheduled(q, &dtd);
                check_safety(&flux, &dtd)
                    .unwrap_or_else(|e| panic!("unsafe schedule for {q} under:\n{dtd_text}\n{e}"));
            }
        }
    }
}
