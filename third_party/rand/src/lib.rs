//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the exact surface the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer ranges. The generator core is SplitMix64, which passes basic
//! statistical tests and — the only property in-repo consumers rely on — is
//! fully deterministic per seed. See `third_party/README.md`.

use core::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (which must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high-quality bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with uniform sampling over a `[start, end]` interval.
///
/// Mirroring real `rand`, [`SampleRange`] has a single blanket impl per range
/// shape over this trait — a structure type inference needs so unsuffixed
/// literals (`gen_range(0..100)`) unify with the expected result type.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform value in `[start, end]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that knows how to sample one of its elements.
pub trait SampleRange<T> {
    /// Draws a uniform element of `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_inclusive(self.start, self.end.minus_one(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range called with empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Decrement support for turning a half-open bound into an inclusive one.
pub trait One {
    /// Returns `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),* $(,)?) => {$(
        impl One for $t {
            fn minus_one(self) -> $t {
                self - 1
            }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
