//! Low-level incremental byte scanner used by the XML reader.
//!
//! Maintains a small refillable window over the underlying [`Read`] so the
//! reader never materialises the whole input — memory use is bounded by the
//! longest single token (tag, text run, comment), not by document size.
//!
//! Every byte entering the window is swept **once** by the vectorised
//! structural prescan ([`crate::simd`]) as it is read from the source; the
//! resulting [`StructuralIndex`] then powers phase two: text runs hop
//! straight to the next indexed `<`, tag ends are located by walking `>`
//! candidates against quote parity ([`Scanner::probe_tag`]), escape
//! probes consult the `&` lane, and line/column accounting folds into the
//! newline lane instead of re-counting consumed spans. Index lanes store
//! **absolute input offsets**, so window compaction never invalidates them.

use crate::error::{Position, Result, XmlError};
use crate::input::{BudgetCharge, BudgetKind, MemoryBudget, MIN_WINDOW};
use crate::scan::{find_byte, find_subslice};
use crate::simd::{self, StructuralIndex};
use flux_telemetry::ScanCounters;
use std::io::Read;
use std::sync::Arc;

/// What [`Scanner::probe_tag`] learned about the markup construct at the
/// window head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagProbe {
    /// The closing `>` is not determinable within the buffered window
    /// (tag spans the window edge, or a quoted value is unterminated so
    /// far) — grow the window and retry.
    NeedMore,
    /// The closing `>` sits `rel_end` bytes past the window head. `dirty`
    /// flags content the fast tag path must hand to the byte-at-a-time
    /// parser: a stray `<` or any `&` strictly inside the tag.
    Found { rel_end: usize, dirty: bool },
}

/// Incremental scanner with single-byte and small-slice lookahead.
pub struct Scanner<R: Read> {
    src: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    eof: bool,
    offset: u64,
    line: u32,
    column: u32,
    /// Structural positions of every byte read so far (absolute offsets;
    /// entries behind `offset` are pruned as the window compacts).
    index: StructuralIndex,
    /// Refill/prescan counters (zero-sized unless telemetry is enabled).
    tel: ScanCounters,
    /// Configured window size: the refill granularity and the initial
    /// buffer capacity. The buffer still grows past it when one token is
    /// longer than the window — the growth is charged to the budget.
    window: usize,
    /// Live charge for `buf`'s capacity against the attached budget.
    charge: Option<BudgetCharge>,
}

impl<R: Read> Scanner<R> {
    /// Default-window scanner without budget accounting (test convenience;
    /// production callers thread the window through [`Scanner::with_window`]).
    #[cfg(test)]
    pub fn new(src: R) -> Self {
        Scanner::with_window(src, crate::input::DEFAULT_WINDOW, None)
    }

    /// A scanner with an explicit window size, optionally charging its
    /// buffer against `budget` for the scanner's lifetime.
    pub fn with_window(src: R, window: usize, budget: Option<Arc<MemoryBudget>>) -> Self {
        let window = window.max(MIN_WINDOW);
        let charge = budget.map(|b| b.charge(BudgetKind::Window, window as u64));
        Scanner {
            src,
            buf: vec![0; window],
            start: 0,
            end: 0,
            eof: false,
            offset: 0,
            line: 1,
            column: 1,
            index: StructuralIndex::new(),
            tel: ScanCounters::default(),
            window,
            charge,
        }
    }

    /// The configured window size in bytes.
    pub fn window_size(&self) -> usize {
        self.window
    }

    /// Keeps the budget charge in sync with `buf`'s current size.
    fn recharge(&mut self) {
        if let Some(charge) = &mut self.charge {
            charge.grow_to(self.buf.len() as u64);
        }
    }

    /// A copy of this scanner's refill/prescan counters.
    pub(crate) fn telemetry(&self) -> ScanCounters {
        self.tel
    }

    /// Current position (next unread byte).
    pub fn position(&self) -> Position {
        Position {
            offset: self.offset,
            line: self.line,
            column: self.column,
        }
    }

    fn available(&self) -> usize {
        self.end - self.start
    }

    /// Ensures at least `n` unread bytes are buffered, or EOF was reached.
    fn fill(&mut self, n: usize) -> Result<()> {
        if self.available() >= n || self.eof {
            return Ok(());
        }
        // Compact the consumed prefix away. Index lanes hold absolute
        // offsets, so compaction only prunes entries behind the current
        // position — it never remaps anything.
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
            self.index.drop_before(self.offset);
            self.index.release_consumed();
        }
        if self.buf.len() < n {
            self.buf.resize(n.max(self.window), 0);
            self.recharge();
        }
        while self.available() < n && !self.eof {
            if self.end == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
                self.recharge();
            }
            let read = self.src.read(&mut self.buf[self.end..])?;
            if read == 0 {
                self.eof = true;
            } else {
                // Phase one: prescan the bytes exactly once, as they
                // arrive. Everything buffered is therefore always indexed.
                let base_abs = self.offset + (self.end - self.start) as u64;
                simd::prescan_into(
                    &self.buf[self.end..self.end + read],
                    base_abs,
                    &mut self.index,
                );
                self.tel.refills(1);
                self.tel.prescan_bytes(read as u64);
                self.end += read;
            }
        }
        Ok(())
    }

    /// Next byte without consuming it.
    pub fn peek(&mut self) -> Result<Option<u8>> {
        self.fill(1)?;
        Ok(if self.available() == 0 {
            None
        } else {
            Some(self.buf[self.start])
        })
    }

    /// Up to `n` upcoming bytes without consuming them (shorter at EOF).
    pub fn peek_slice(&mut self, n: usize) -> Result<&[u8]> {
        self.fill(n)?;
        let len = self.available().min(n);
        Ok(&self.buf[self.start..self.start + len])
    }

    /// True if the upcoming bytes start with `s` (without consuming).
    pub fn looking_at(&mut self, s: &[u8]) -> Result<bool> {
        Ok(self.peek_slice(s.len())? == s)
    }

    fn advance_position(&mut self, b: u8) {
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }

    /// Position bookkeeping for a whole consumed run `buf[from..to]` at
    /// once: the prescan's newline lane already knows every `\n` in the
    /// span, so this re-reads nothing — it drains the lane entries the
    /// span covers. (Newlines consumed byte-at-a-time leave stale entries
    /// behind; `take_range` drops those silently below `from`.)
    fn advance_span(&mut self, from: usize, to: usize) {
        debug_assert_eq!(from, self.start, "spans are consumed from the window head");
        let from_abs = self.offset;
        let to_abs = from_abs + (to - from) as u64;
        let (newlines, last) = self.index.nl.take_range(from_abs, to_abs);
        if let Some(last) = last {
            self.line += newlines as u32;
            self.column = (to_abs - last) as u32;
        } else {
            self.column += (to - from) as u32;
        }
        self.offset = to_abs;
    }

    /// The buffered, unconsumed window. Every byte in it has already been
    /// prescanned into the structural index.
    pub fn window(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Grows the window by at least one byte; `false` when the source has
    /// nothing more to give.
    pub fn fill_more(&mut self) -> Result<bool> {
        if self.eof {
            return Ok(false);
        }
        let before = self.available();
        self.fill(before + 1)?;
        Ok(self.available() > before)
    }

    /// Consumes `n` window bytes as one span. Newline accounting comes
    /// from the prescan's lane — no byte is re-inspected.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.available());
        self.advance_span(self.start, self.start + n);
        self.start += n;
    }

    /// Whether any `&` was indexed in the absolute range `[from, to)`:
    /// the reader's escape probe for just-consumed text runs. Call before
    /// anything that could refill — compaction prunes entries behind the
    /// current offset.
    pub fn amp_between(&mut self, from_abs: u64, to_abs: u64) -> bool {
        self.index.amp.drop_before(from_abs);
        matches!(self.index.amp.peek(), Some(abs) if abs < to_abs)
    }

    /// Probes the markup construct starting at the current `<` using only
    /// the structural index: locates the closing `>` by walking the `>`
    /// lane against quote parity (a `>` inside a quoted attribute value
    /// is not a tag end), and flags content the fast tag path must not
    /// handle. Read-only: nothing is consumed, so the caller can refill
    /// and retry, or fall back to the byte-at-a-time path, with identical
    /// scanner state.
    pub fn probe_tag(&mut self) -> TagProbe {
        debug_assert_eq!(self.window().first(), Some(&b'<'));
        self.index.gt.drop_before(self.offset);
        self.index.quote.drop_before(self.offset);
        let mut gts = self.index.gt.cursor();
        let mut quotes = self.index.quote.cursor();
        let mut from = self.offset + 1;
        let Some(mut candidate) = gts.next_at_or_after(from) else {
            return TagProbe::NeedMore;
        };
        let gt = loop {
            match quotes.next_at_or_after(from) {
                Some(q) if q < candidate => {
                    // A value opens before this `>` candidate: skip to the
                    // matching close quote (the next quote of the same
                    // kind — the other kind is literal inside the value).
                    let open = self.buf[self.start + (q - self.offset) as usize];
                    loop {
                        let Some(q2) = quotes.next() else {
                            return TagProbe::NeedMore;
                        };
                        if self.buf[self.start + (q2 - self.offset) as usize] == open {
                            from = q2 + 1;
                            break;
                        }
                    }
                    // Only when the value swallowed the candidate (a
                    // quoted `>`) does the search move to the next one;
                    // otherwise the same candidate stands and the loop
                    // re-checks it against the remaining quotes.
                    if from > candidate {
                        let Some(next) = gts.next_at_or_after(from) else {
                            return TagProbe::NeedMore;
                        };
                        candidate = next;
                    }
                }
                _ => break candidate,
            }
        };
        // Dirty content — a stray `<` (a well-formedness error) or any
        // `&` (a value needing unescaping) — is answered by the lanes
        // without touching a tag byte.
        self.index.lt.drop_before(self.offset + 1);
        self.index.amp.drop_before(self.offset + 1);
        let dirty = matches!(self.index.lt.peek(), Some(p) if p < gt)
            || matches!(self.index.amp.peek(), Some(p) if p < gt);
        TagProbe::Found {
            rel_end: (gt - self.offset) as usize,
            dirty,
        }
    }

    /// Consumes and returns the next byte.
    pub fn next_byte(&mut self) -> Result<Option<u8>> {
        self.fill(1)?;
        if self.available() == 0 {
            return Ok(None);
        }
        let b = self.buf[self.start];
        self.start += 1;
        self.advance_position(b);
        Ok(Some(b))
    }

    /// Consumes `s`, which must be the upcoming input (checked with
    /// `looking_at` by the caller or enforced here).
    pub fn expect_str(&mut self, s: &'static [u8], what: &'static str) -> Result<()> {
        if !self.looking_at(s)? {
            let pos = self.position();
            if self.available() < s.len() && self.eof {
                return Err(XmlError::UnexpectedEof {
                    expected: what,
                    pos,
                });
            }
            return Err(XmlError::Syntax {
                message: format!("expected {what}"),
                pos,
            });
        }
        for _ in 0..s.len() {
            self.next_byte()?;
        }
        Ok(())
    }

    /// Consumes a single expected byte.
    pub fn expect_byte(&mut self, b: u8, what: &'static str) -> Result<()> {
        match self.peek()? {
            Some(got) if got == b => {
                self.next_byte()?;
                Ok(())
            }
            Some(_) => Err(XmlError::Syntax {
                message: format!("expected {what}"),
                pos: self.position(),
            }),
            None => Err(XmlError::UnexpectedEof {
                expected: what,
                pos: self.position(),
            }),
        }
    }

    /// Skips XML whitespace; returns how many bytes were skipped.
    pub fn skip_whitespace(&mut self) -> Result<usize> {
        let mut n = 0;
        while let Some(b) = self.peek()? {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.next_byte()?;
                n += 1;
            } else {
                break;
            }
        }
        Ok(n)
    }

    /// Consumes bytes while `pred` holds, appending them to `out`.
    pub fn read_while(
        &mut self,
        mut pred: impl FnMut(u8) -> bool,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        loop {
            self.fill(1)?;
            if self.available() == 0 {
                return Ok(());
            }
            // Scan the buffered window directly for speed.
            let window_len = self.end - self.start;
            let mut taken = 0;
            for i in self.start..self.end {
                if pred(self.buf[i]) {
                    taken += 1;
                } else {
                    break;
                }
            }
            out.extend_from_slice(&self.buf[self.start..self.start + taken]);
            self.advance_span(self.start, self.start + taken);
            self.start += taken;
            if taken < window_len || self.eof && self.available() == 0 {
                return Ok(());
            }
        }
    }

    /// Attempts to consume a whole run up to (not including) `stop`
    /// **without copying**: when the run ends inside the currently
    /// buffered window and at least `lookahead` bytes beyond the stop are
    /// already buffered (or EOF was reached), the run is consumed and its
    /// absolute range in the buffer is returned. The range stays valid as
    /// long as no method refills or compacts the buffer — peeks of up to
    /// `lookahead` bytes are guaranteed not to.
    ///
    /// Returns `None` without consuming anything when the run may cross a
    /// refill boundary; the caller falls back to the copying
    /// [`Scanner::read_until_byte`].
    pub fn borrow_run(&mut self, stop: u8, lookahead: usize) -> Result<Option<(usize, usize)>> {
        self.fill(1)?;
        let taken = match self.find_in_window(stop) {
            // The stop byte and `lookahead` bytes of context are buffered:
            // peeks after the run cannot trigger a refill.
            Some(i) if self.end - (self.start + i) >= lookahead || self.eof => i,
            // No stop byte, but EOF: the window is the whole rest.
            None if self.eof => self.available(),
            _ => return Ok(None),
        };
        let range = (self.start, self.start + taken);
        self.advance_span(range.0, range.1);
        self.start += taken;
        Ok(Some(range))
    }

    /// Index, relative to the window start, of the next `stop` byte:
    /// answered by the structural lane when `stop` has a dedicated one
    /// (a cursor hop instead of a byte search), SWAR otherwise. The
    /// merged quote lane is deliberately excluded — it cannot tell `"`
    /// from `'` without a byte check.
    fn find_in_window(&mut self, stop: u8) -> Option<usize> {
        let lane = match stop {
            b'<' => &mut self.index.lt,
            b'>' => &mut self.index.gt,
            b'&' => &mut self.index.amp,
            b'\n' => &mut self.index.nl,
            _ => return find_byte(&self.buf[self.start..self.end], stop),
        };
        let end_abs = self.offset + (self.end - self.start) as u64;
        match lane.next_at_or_after(self.offset) {
            Some(abs) if abs < end_abs => Some((abs - self.offset) as usize),
            _ => None,
        }
    }

    /// The bytes behind a range returned by [`Scanner::borrow_run`].
    pub fn borrowed(&self, range: (usize, usize)) -> &[u8] {
        &self.buf[range.0..range.1]
    }

    /// Consumes bytes up to (not including) the next occurrence of `stop`,
    /// appending them to `out`. The indexed fast path for text runs:
    /// equivalent to `read_while(|b| b != stop, out)`, but the stop search
    /// is a lane-cursor hop and the newline accounting a lane drain — no
    /// consumed byte is inspected twice.
    pub fn read_until_byte(&mut self, stop: u8, out: &mut Vec<u8>) -> Result<()> {
        loop {
            self.fill(1)?;
            if self.available() == 0 {
                return Ok(());
            }
            let window_len = self.end - self.start;
            let taken = self.find_in_window(stop).unwrap_or(window_len);
            out.extend_from_slice(&self.buf[self.start..self.start + taken]);
            self.advance_span(self.start, self.start + taken);
            self.start += taken;
            if taken < window_len || self.eof && self.available() == 0 {
                return Ok(());
            }
        }
    }

    /// Consumes bytes up to and including the delimiter string `delim`,
    /// appending everything before the delimiter to `out`.
    pub fn read_until(
        &mut self,
        delim: &[u8],
        out: &mut Vec<u8>,
        what: &'static str,
    ) -> Result<()> {
        debug_assert!(!delim.is_empty());
        loop {
            self.fill(delim.len())?;
            if self.available() < delim.len() {
                return Err(XmlError::UnexpectedEof {
                    expected: what,
                    pos: self.position(),
                });
            }
            let window = &self.buf[self.start..self.end];
            match find_subslice(window, delim) {
                Some(at) => {
                    out.extend_from_slice(&self.buf[self.start..self.start + at]);
                    self.advance_span(self.start, self.start + at + delim.len());
                    self.start += at + delim.len();
                    return Ok(());
                }
                None => {
                    // Keep the last delim.len()-1 bytes: they may begin the
                    // delimiter continued in the next chunk.
                    let keep = delim.len() - 1;
                    let consumable = window.len().saturating_sub(keep);
                    out.extend_from_slice(&self.buf[self.start..self.start + consumable]);
                    self.advance_span(self.start, self.start + consumable);
                    self.start += consumable;
                    if self.eof {
                        return Err(XmlError::UnexpectedEof {
                            expected: what,
                            pos: self.position(),
                        });
                    }
                    self.fill(self.available() + 1)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DEFAULT_WINDOW;

    fn scanner(s: &str) -> Scanner<&[u8]> {
        Scanner::new(s.as_bytes())
    }

    #[test]
    fn peek_and_next() {
        let mut sc = scanner("ab");
        assert_eq!(sc.peek().unwrap(), Some(b'a'));
        assert_eq!(sc.next_byte().unwrap(), Some(b'a'));
        assert_eq!(sc.next_byte().unwrap(), Some(b'b'));
        assert_eq!(sc.next_byte().unwrap(), None);
        assert_eq!(sc.peek().unwrap(), None);
    }

    #[test]
    fn position_tracking() {
        let mut sc = scanner("a\nbc");
        sc.next_byte().unwrap();
        sc.next_byte().unwrap();
        let pos = sc.position();
        assert_eq!(pos.line, 2);
        assert_eq!(pos.column, 1);
        assert_eq!(pos.offset, 2);
        sc.next_byte().unwrap();
        assert_eq!(sc.position().column, 2);
    }

    #[test]
    fn looking_at_and_expect() {
        let mut sc = scanner("<!--x-->");
        assert!(sc.looking_at(b"<!--").unwrap());
        assert!(!sc.looking_at(b"<!DO").unwrap());
        sc.expect_str(b"<!--", "comment start").unwrap();
        assert_eq!(sc.peek().unwrap(), Some(b'x'));
    }

    #[test]
    fn read_until_simple() {
        let mut sc = scanner("hello-->rest");
        let mut out = Vec::new();
        sc.read_until(b"-->", &mut out, "comment end").unwrap();
        assert_eq!(out, b"hello");
        assert_eq!(sc.peek().unwrap(), Some(b'r'));
    }

    #[test]
    fn read_until_delimiter_spanning_chunks() {
        // Force the delimiter to straddle refill boundaries by using a large prefix.
        let prefix = "x".repeat(DEFAULT_WINDOW * 2 + 3);
        let input = format!("{prefix}-->tail");
        let mut sc = Scanner::new(input.as_bytes());
        let mut out = Vec::new();
        sc.read_until(b"-->", &mut out, "end").unwrap();
        assert_eq!(out.len(), prefix.len());
        assert_eq!(sc.peek().unwrap(), Some(b't'));
    }

    #[test]
    fn read_until_eof_errors() {
        let mut sc = scanner("no delimiter here");
        let mut out = Vec::new();
        let err = sc.read_until(b"-->", &mut out, "comment end").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn read_while_stops_at_boundary() {
        let mut sc = scanner("abc<def");
        let mut out = Vec::new();
        sc.read_while(|b| b != b'<', &mut out).unwrap();
        assert_eq!(out, b"abc");
        assert_eq!(sc.peek().unwrap(), Some(b'<'));
    }

    #[test]
    fn read_until_byte_matches_read_while() {
        let input = "line one\nline two<rest";
        let mut a = scanner(input);
        let mut b = scanner(input);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        a.read_until_byte(b'<', &mut out_a).unwrap();
        b.read_while(|x| x != b'<', &mut out_b).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(a.position(), b.position());
        assert_eq!(a.position().line, 2);
        assert_eq!(a.position().column, 9, "column counted from last newline");
        assert_eq!(a.peek().unwrap(), Some(b'<'));
    }

    #[test]
    fn read_until_byte_spanning_chunks() {
        let prefix = "y\n".repeat(DEFAULT_WINDOW);
        let input = format!("{prefix}<tail");
        let mut sc = Scanner::new(input.as_bytes());
        let mut out = Vec::new();
        sc.read_until_byte(b'<', &mut out).unwrap();
        assert_eq!(out.len(), prefix.len());
        assert_eq!(sc.position().line as usize, DEFAULT_WINDOW + 1);
        assert_eq!(sc.peek().unwrap(), Some(b'<'));
    }

    #[test]
    fn small_window_parses_and_charges_budget() {
        let budget = crate::input::MemoryBudget::new(u64::MAX);
        let input = "a".repeat(500) + "<rest";
        {
            let mut sc =
                Scanner::with_window(input.as_bytes(), MIN_WINDOW, Some(Arc::clone(&budget)));
            assert_eq!(sc.window_size(), MIN_WINDOW);
            assert_eq!(budget.current(BudgetKind::Window), MIN_WINDOW as u64);
            let mut out = Vec::new();
            sc.read_until_byte(b'<', &mut out).unwrap();
            assert_eq!(out.len(), 500);
            // A 500-byte token through a 64-byte window forces refills and
            // compactions but never a whole-input buffer.
            assert!(budget.peak(BudgetKind::Window) < input.len() as u64);
        }
        // Scanner drop released the charge.
        assert_eq!(budget.current(BudgetKind::Window), 0);
    }

    #[test]
    fn tiny_window_long_token_grows_buffer_and_charge() {
        let budget = crate::input::MemoryBudget::new(u64::MAX);
        let tag = format!("<e a=\"{}\"/>", "v".repeat(4096));
        let mut sc = Scanner::with_window(tag.as_bytes(), MIN_WINDOW, Some(Arc::clone(&budget)));
        // Force the whole tag into the window, as probe_tag retries do.
        while sc.fill_more().unwrap() {}
        assert!(sc.window().len() >= tag.len());
        assert!(budget.current(BudgetKind::Window) >= tag.len() as u64);
    }

    #[test]
    fn skip_whitespace_counts() {
        let mut sc = scanner("  \t\n x");
        assert_eq!(sc.skip_whitespace().unwrap(), 5);
        assert_eq!(sc.peek().unwrap(), Some(b'x'));
        assert_eq!(sc.skip_whitespace().unwrap(), 0);
    }
}
