//! The per-shard worker: parses one chunk as a document fragment into a
//! compact, owned event buffer that the merger replays without re-parsing.
//!
//! Workers are where the expensive work happens — tokenisation, UTF-8
//! validation, entity unescaping, name interning — and they run fully in
//! parallel. Each worker clones the shared seed [`SymbolTable`]; clones
//! preserve indices, so every symbol at or below the seed length means the
//! same name in every shard. Names first seen *inside* a shard are
//! shard-local and reported back via [`ShardEvents::new_names`] for the
//! merger to re-intern (the only renaming anywhere in the pipeline).

use flux_symbols::{Symbol, SymbolTable};
use flux_xml::{Position, RawEvent, RawEventKind, ReaderConfig, Result, XmlError, XmlReader};

/// One encoded event: fixed-size header plus spans into the shard's text
/// arena and attribute table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncEvent {
    pub kind: RawEventKind,
    /// Shard-local symbol (resolve through the merger's remap table).
    pub name: Symbol,
    /// Range into [`ShardEvents::attrs`].
    pub attrs: (usize, usize),
    /// Range into [`ShardEvents::arena`] holding the text payload.
    pub text: (usize, usize),
    /// Range into the arena holding the target payload (PI target,
    /// doctype name).
    pub target: (usize, usize),
    pub has_internal_subset: bool,
    /// Mirrors [`RawEvent::is_text_synthetic`]: some of the text came from
    /// entity references or CDATA. The merger needs it to reproduce the
    /// sequential prolog/epilog verdicts exactly.
    pub text_synthetic: bool,
}

/// One encoded attribute: shard-local name symbol plus the unescaped value
/// as an arena span.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncAttr {
    pub name: Symbol,
    pub value: (usize, usize),
}

/// Everything one shard produces: its event tape plus the stack summary
/// the merger stitches with.
#[derive(Debug, Default)]
pub(crate) struct ShardEvents {
    pub events: Vec<EncEvent>,
    pub attrs: Vec<EncAttr>,
    /// All string payloads, concatenated (events/attrs hold spans).
    pub arena: String,
    /// Names interned beyond the seed prefix, in shard-local index order.
    pub new_names: Vec<String>,
    /// Prefix summary: names of end tags that close elements opened in an
    /// earlier shard, in stream order.
    pub closes: Vec<Symbol>,
    /// Suffix summary: elements still open at the end of the chunk,
    /// outermost first.
    pub opens: Vec<Symbol>,
    /// Byte offset of this chunk in the whole input (error reporting).
    pub base_offset: u64,
}

/// Shifts a shard-local error position by the chunk's base offset. Line
/// and column stay chunk-relative — exact global line numbers would
/// require counting newlines in earlier chunks, which the parallel path
/// deliberately skips.
fn offset_position(pos: Position, base: u64) -> Position {
    Position {
        offset: pos.offset + base,
        ..pos
    }
}

pub(crate) fn offset_error(err: XmlError, base: u64) -> XmlError {
    match err {
        XmlError::UnexpectedEof { expected, pos } => XmlError::UnexpectedEof {
            expected,
            pos: offset_position(pos, base),
        },
        XmlError::Syntax { message, pos } => XmlError::Syntax {
            message,
            pos: offset_position(pos, base),
        },
        XmlError::WellFormedness { message, pos } => XmlError::WellFormedness {
            message,
            pos: offset_position(pos, base),
        },
        XmlError::UnknownEntity { name, pos } => XmlError::UnknownEntity {
            name,
            pos: offset_position(pos, base),
        },
        XmlError::InvalidUtf8 { pos } => XmlError::InvalidUtf8 {
            pos: offset_position(pos, base),
        },
        other => other,
    }
}

/// Parses `chunk` (starting `base_offset` bytes into the document) as a
/// fragment, returning its encoded event tape.
pub(crate) fn parse_fragment(
    chunk: &[u8],
    base_offset: u64,
    reader_config: &ReaderConfig,
    seed: &SymbolTable,
) -> Result<ShardEvents> {
    debug_assert!(reader_config.fragment, "workers parse fragments");
    debug_assert!(
        reader_config.max_symbols.is_none(),
        "sharding uses unbounded interners; bound memory by shard instead"
    );
    let mut reader = XmlReader::with_symbols(chunk, reader_config.clone(), seed.clone());
    let mut out = ShardEvents {
        base_offset,
        ..ShardEvents::default()
    };
    // Typical markup density: one event per ~20 bytes, payloads well under
    // half the chunk. Reserving avoids regrowth churn in the hot loop.
    out.events.reserve(chunk.len() / 16);
    out.arena.reserve(chunk.len() / 2);
    let mut ev = RawEvent::new();
    // Local element depth; an end tag at depth zero closes an element
    // opened in an earlier shard.
    let mut depth = 0usize;
    loop {
        match reader.next_into(&mut ev) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(offset_error(e, base_offset)),
        }
        match ev.kind() {
            // The merger synthesises the document brackets itself.
            RawEventKind::StartDocument | RawEventKind::EndDocument => continue,
            RawEventKind::StartElement => depth += 1,
            RawEventKind::EndElement => {
                if depth == 0 {
                    out.closes.push(ev.name());
                } else {
                    depth -= 1;
                }
            }
            _ => {}
        }
        encode(&mut out, &ev);
    }
    out.opens = reader.open_elements().to_vec();
    let table = reader.symbols();
    out.new_names
        .extend((seed.len()..table.len()).map(|i| table.name(Symbol::from_index(i)).to_string()));
    Ok(out)
}

/// Appends `text` to the arena, returning its span.
fn push_span(arena: &mut String, text: &str) -> (usize, usize) {
    let start = arena.len();
    arena.push_str(text);
    (start, arena.len())
}

fn encode(out: &mut ShardEvents, ev: &RawEvent) {
    let attrs_start = out.attrs.len();
    for attr in ev.attributes() {
        let value = push_span(&mut out.arena, &attr.value);
        out.attrs.push(EncAttr {
            name: attr.name,
            value,
        });
    }
    let text = push_span(&mut out.arena, ev.text());
    let target = push_span(&mut out.arena, ev.target());
    out.events.push(EncEvent {
        kind: ev.kind(),
        name: ev.name(),
        attrs: (attrs_start, out.attrs.len()),
        text,
        target,
        has_internal_subset: ev.internal_subset().is_some(),
        text_synthetic: ev.is_text_synthetic(),
    });
}
