//! Interned element-name symbols.
//!
//! The `Symbol`/`SymbolTable` pair now lives in the foundation crate
//! [`flux_symbols`] so the streaming XML reader (one dependency layer
//! *below* this crate) can produce interned names directly. This module
//! remains as a compatibility re-export: `flux_dtd::symbol::SymbolTable`
//! and `flux_dtd::SymbolTable` keep working unchanged.

pub use flux_symbols::{Symbol, SymbolTable};
