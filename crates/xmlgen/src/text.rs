//! Deterministic pseudo-natural text for generated documents.

use rand::rngs::SmallRng;
use rand::Rng;

const SYLLABLES: &[&str] = &[
    "da", "ta", "flu", "x", "que", "ry", "sto", "re", "mem", "buf", "fer", "log", "mi", "ni",
    "str", "eam", "no", "va", "lex", "or", "pra", "gma", "zen", "kol", "tur", "bi", "na",
];

/// A pseudo-word of 2–4 syllables.
pub fn word(rng: &mut SmallRng) -> String {
    let syllables = rng.gen_range(2..=4);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    w
}

/// A capitalised pseudo-name.
pub fn name(rng: &mut SmallRng) -> String {
    let mut w = word(rng);
    if let Some(first) = w.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    w
}

/// A sentence of `words` pseudo-words.
pub fn sentence(rng: &mut SmallRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&word(rng));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(word(&mut a), word(&mut b));
        assert_eq!(sentence(&mut a, 5), sentence(&mut b, 5));
    }

    #[test]
    fn name_capitalised() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = name(&mut rng);
        assert!(n.chars().next().unwrap().is_ascii_uppercase());
    }

    #[test]
    fn sentence_word_count() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = sentence(&mut rng, 7);
        assert_eq!(s.split(' ').count(), 7);
    }
}
