//! # flux_shard
//!
//! A parallel sharded streaming pipeline for multi-core event throughput.
//!
//! The FluXQuery stack treats the event stream as a single sequential
//! source; this crate parallelises the expensive part — parsing — while
//! keeping every consumer-visible property of the sequential reader:
//!
//! 1. **Split.** [`splitter::split_points`] scans the input buffer with
//!    the SWAR kernel and places chunk boundaries on safe element-tag `<`
//!    positions (never inside comments, CDATA, PIs or DOCTYPEs). Because
//!    boundaries sit on element tags, no token or text run ever straddles
//!    a seam.
//! 2. **Parse.** One fragment-mode [`flux_xml::XmlReader`] per chunk runs
//!    on its own `std::thread`, each seeded with a clone of the shared
//!    [`SymbolTable`] (clones preserve indices, so symbols agree across
//!    shards without renaming). Each worker records its chunk onto a
//!    [`flux_xml::EventTape`] — every payload byte materialised exactly
//!    once — and hands the finished tape to the consumer through a
//!    bounded channel *as soon as it is done*.
//! 3. **Replay, pipelined.** [`ShardedReader::advance`] replays shard
//!    *i*'s tape while workers are still parsing shards *i+1..N*
//!    ([`ReplayMode::Pipelined`], the default) — so XSAX validation and
//!    query evaluation overlap parsing instead of waiting behind a join
//!    barrier. Replay is **zero-copy**: [`ShardedReader::view`] serves
//!    [`RawEventRef`] views whose payloads borrow the tape arena, so the
//!    serial per-event term that bounded speedup at `1/(1/N + r)` is span
//!    arithmetic, not a byte copy.
//! 4. **Re-check.** Replay re-checks everything the fragment readers
//!    relaxed — global tag balance against one running stack, single
//!    root, no top-level text, DOCTYPE position, the depth limit — so the
//!    merged stream is event-for-event the sequential one, and errors are
//!    raised **at the same point in the stream**: the valid prefix is
//!    delivered first, then the error, with a position composed from the
//!    per-event positions the workers recorded (byte-exact for offset,
//!    line and column). Downstream,
//!    `flux_xsax::XsaxParser::from_source` consumes this stream and
//!    carries its content-model DFA configuration across every shard seam
//!    — the single piece of cross-shard state — so validation verdicts,
//!    error positions and on-first fire points stay exactly sequential.
//!
//! Two ingestion modes share the replay machinery:
//!
//! * **Buffered** ([`ShardedReader::new`]): the input is a byte buffer,
//!   split up-front by [`splitter::split_points`] into exactly N chunks.
//!   Memory is the whole buffer plus up to N in-flight tapes — maximal
//!   throughput when the bytes are already resident.
//! * **Streamed** ([`ShardedReader::from_stream`]): the input is an
//!   unbounded `Read`. A dispatcher thread cuts it incrementally at the
//!   same safe boundaries (`splitter::find_boundary`) and a worker pool
//!   parses chunks as they arrive, handing tapes over in *segments* of
//!   [`ShardConfig::segment_events`] events. Every pool is bounded —
//!   O(workers) chunks and O(segment × queue × workers) tape bytes in
//!   flight — so multi-gigabyte documents stream through in constant
//!   memory, optionally enforced by a [`flux_xml::MemoryBudget`]. The
//!   replayed event stream, verdicts and error positions are byte-exact
//!   the buffered (and sequential) ones.

pub mod splitter;
mod stream;
mod worker;

use flux_symbols::{Symbol, SymbolTable};
use flux_telemetry::{
    Journal, ReaderCounters, RunReport, ScanCounters, ShardLane, Stage, Stopwatch,
};
use flux_xml::{
    BudgetCharge, EventSource, MemoryBudget, Position, RawEvent, RawEventKind, RawEventRef,
    ReaderConfig, Result, SymbolRemap, XmlError,
};
use std::collections::BTreeMap;
use std::io::Read;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use stream::{start_stream, ChunkMsg, StreamLaunch};
use worker::{parse_fragment, Segment, ShardTape};

/// When the consumer gets to see a finished shard tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// Replay shard *i* as soon as its tape arrives, while workers still
    /// parse shards *i+1..N* — validation overlaps parsing and the replay
    /// cost hides behind the parallel parse.
    #[default]
    Pipelined,
    /// Wait for every worker before replaying anything (the join-then-
    /// replay barrier, kept for equivalence testing and benchmarking).
    /// The event stream, errors and positions are identical to
    /// [`ReplayMode::Pipelined`]; only the overlap differs. Buffered
    /// ingestion only: a streamed run is always pipelined (joining an
    /// unbounded stream would unbound memory) and ignores this setting.
    Joined,
}

/// Configuration for [`ShardedReader`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested number of shards. The effective count may be lower when
    /// the input is small ([`ShardConfig::min_shard_bytes`]) or offers too
    /// few safe boundaries; `1` degenerates to a sequential fragment parse.
    pub shards: usize,
    /// Emit comment events (mirrors [`ReaderConfig::emit_comments`]).
    pub emit_comments: bool,
    /// Emit processing-instruction events.
    pub emit_processing_instructions: bool,
    /// Hard limit on element nesting depth, enforced globally at replay
    /// exactly like the sequential reader enforces it.
    pub max_depth: usize,
    /// Do not split below this many bytes per shard; tiny inputs are not
    /// worth the thread fan-out.
    pub min_shard_bytes: usize,
    /// Pipelined (default) or join-then-replay consumption.
    pub mode: ReplayMode,
    /// Cap on the **merged** symbol table (the sharded analogue of
    /// [`ReaderConfig::max_symbols`]; default `None`). Workers intern
    /// unboundedly — their tables are bounded by chunk content and die
    /// with the shard — but the long-lived consumer table stops growing
    /// at the cap: merged names past it travel as
    /// [`SymbolTable::OVERFLOW`] plus the literal spelling, exactly like
    /// the sequential reader's bounded mode.
    pub max_symbols: Option<usize>,
    /// Scanner window size for each fragment reader (see
    /// [`ReaderConfig::window`]).
    pub window: usize,
    /// Memory budget shared by every pool the pipeline grows: fragment
    /// scanner windows, in-flight streamed chunks and tape segments.
    /// `None` (the default) disables the accounting entirely.
    pub budget: Option<Arc<MemoryBudget>>,
    /// Streamed mode only: target chunk size in bytes. Chunks extend past
    /// the target to the next safe element-tag boundary.
    pub chunk_bytes: usize,
    /// Streamed mode only: workers hand over a partial tape every this
    /// many events, bounding in-flight tape memory by
    /// O(`segment_events` × [`ShardConfig::segment_queue`] × shards)
    /// instead of chunk size.
    pub segment_events: usize,
    /// Streamed mode only: workers also flush a partial tape once its
    /// arena reaches this many bytes, so payload-heavy content (long
    /// text runs, fat attributes) cannot inflate the per-segment
    /// footprint past the event-count bound's assumptions — the
    /// in-flight tape pool is bounded in *bytes*, not just events.
    pub segment_bytes: usize,
    /// Streamed mode only: per-chunk bound on segments parsed ahead of
    /// replay; the worker blocks once the consumer lags this far behind.
    pub segment_queue: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        )
    }
}

impl ShardConfig {
    /// A configuration requesting `shards` parallel shards.
    pub fn new(shards: usize) -> Self {
        ShardConfig {
            shards: shards.max(1),
            emit_comments: false,
            emit_processing_instructions: false,
            max_depth: ReaderConfig::default().max_depth,
            min_shard_bytes: 16 * 1024,
            mode: ReplayMode::default(),
            max_symbols: None,
            window: flux_xml::DEFAULT_WINDOW,
            budget: None,
            chunk_bytes: 1024 * 1024,
            segment_events: 16 * 1024,
            segment_bytes: 256 * 1024,
            segment_queue: 4,
        }
    }

    fn reader_config(&self) -> ReaderConfig {
        ReaderConfig {
            emit_comments: self.emit_comments,
            emit_processing_instructions: self.emit_processing_instructions,
            // Local depth can only underestimate global depth; the exact
            // global limit is enforced at replay.
            max_depth: self.max_depth,
            max_symbols: None,
            fragment: true,
            window: self.window,
            budget: self.budget.clone(),
        }
    }
}

/// Composes a chunk-local position onto the global position of the chunk
/// start: offsets add; lines add (both 1-based); a column on the chunk's
/// first line continues the base line's column.
fn compose(base: Position, local: Position) -> Position {
    Position {
        offset: base.offset + local.offset,
        line: base.line + local.line - 1,
        column: if local.line == 1 {
            base.column + local.column - 1
        } else {
            local.column
        },
    }
}

/// Shifts a worker's chunk-local error to the global position.
fn compose_error(err: XmlError, base: Position) -> XmlError {
    match err {
        XmlError::UnexpectedEof { expected, pos } => XmlError::UnexpectedEof {
            expected,
            pos: compose(base, pos),
        },
        XmlError::Syntax { message, pos } => XmlError::Syntax {
            message,
            pos: compose(base, pos),
        },
        XmlError::WellFormedness { message, pos } => XmlError::WellFormedness {
            message,
            pos: compose(base, pos),
        },
        XmlError::UnknownEntity { name, pos } => XmlError::UnknownEntity {
            name,
            pos: compose(base, pos),
        },
        XmlError::InvalidUtf8 { pos } => XmlError::InvalidUtf8 {
            pos: compose(base, pos),
        },
        other => other,
    }
}

/// Where the bytes come from: a resident buffer split up-front, or an
/// unbounded stream chunked incrementally.
enum SourceKind {
    Buffered(Arc<Vec<u8>>),
    /// `Some` until the first pull launches the pipeline and hands the
    /// reader to the dispatcher thread.
    Stream(Option<Box<dyn Read + Send>>),
}

/// The shard currently being replayed. Buffered mode replays one tape per
/// chunk; streamed mode replays a *chain* of tape segments per chunk,
/// installing the next link when the current one is exhausted.
struct ActiveShard {
    /// The current tape: the whole chunk (buffered) or one segment
    /// (streamed).
    shard: ShardTape,
    /// Merged-table symbols for chunk-local indices past the seed prefix —
    /// cumulative across the chunk's segments.
    remap: Vec<Symbol>,
    /// Literal spellings behind `remap`, same cumulative indexing (the
    /// side channel overflowed symbols resolve through at view time).
    cum_names: Vec<String>,
    /// Global position of this chunk's first byte.
    base: Position,
    /// Replay cursor into the current tape.
    next_event: usize,
    /// Epoch-relative instant replay of this chunk began (always 0 when
    /// telemetry is off).
    activated_at_ns: u64,
    /// Whether no chunk follows this one — drives the end-of-input
    /// re-checks (trailing-text suppression).
    is_final_chunk: bool,
    // Streamed-only state (inert in buffered mode).
    /// The chunk's remaining segment chain.
    seg_rx: Option<Receiver<Segment>>,
    /// The current tape is the chunk's last segment (always true in
    /// buffered mode).
    seg_last: bool,
    /// The chunk's bytes, for the whitespace-skip error replay.
    bytes: Option<Arc<Vec<u8>>>,
    /// One segment received ahead of replay (end-of-input lookahead).
    pending_seg: Option<Segment>,
    /// Budget charge for the chunk buffer; released at chunk end.
    #[allow(dead_code)] // held for its Drop
    charge: Option<BudgetCharge>,
    /// Budget charge for the current segment's tape; released on handover.
    #[allow(dead_code)] // held for its Drop
    tape_charge: Option<BudgetCharge>,
}

/// What [`ShardedReader::view`] currently shows.
enum CurrentEvent {
    /// Nothing delivered yet.
    None,
    /// A synthesised document bracket.
    Synthetic(RawEventKind),
    /// The event at `active.next_event - 1`.
    Tape,
}

/// A parallel drop-in for [`flux_xml::XmlReader`] over an in-memory
/// document: same [`EventSource`] pull contract, same event sequence, same
/// verdicts and error positions — parsed by N threads.
///
/// The first [`ShardedReader::advance`] splits the input and launches the
/// workers; every later advance replays the next tape event (zero-copy)
/// and re-checks the document-level rules. In
/// [`ReplayMode::Pipelined`] the consumer streams shard *i* while shards
/// *i+1..N* are still parsing, so on invalid input the valid prefix is
/// delivered first and the error surfaces at the same stream point — and,
/// thanks to per-event recorded positions, with the same offset, line and
/// column — as the sequential reader's. Errors are terminal: after
/// returning one, the reader reports end of stream.
pub struct ShardedReader {
    input: SourceKind,
    config: ShardConfig,
    symbols: SymbolTable,
    seed_len: usize,
    started: bool,
    total_shards: usize,
    /// Buffered mode: live while workers may still deliver tapes.
    rx: Option<Receiver<(usize, ShardTape)>>,
    /// Streamed mode: the dispatcher's dispatch-ordered chunk stream.
    chunk_rx: Option<Receiver<ChunkMsg>>,
    /// Tapes that arrived ahead of replay order.
    parked: BTreeMap<usize, ShardTape>,
    /// Index of the next shard to replay.
    next_shard: usize,
    active: Option<ActiveShard>,
    /// Global position where the next chunk starts.
    chunk_base: Position,
    // Replay state: the document-level rules the fragments relaxed.
    emitted_start: bool,
    finished: bool,
    /// Open elements across the whole document — replay re-checks tag
    /// balance exactly like the sequential reader, at the same events.
    stack: Vec<Symbol>,
    /// Literal names of open elements whose merged symbol is
    /// [`SymbolTable::OVERFLOW`] (bounded merged table), innermost last —
    /// mirrors the sequential reader's overflow stack so two overflowed
    /// names only balance when their spellings agree.
    overflow_stack: Vec<String>,
    /// Recycled literal side-channel buffers: every overflowed name event
    /// fills a pooled `String` instead of allocating, and balanced pairs
    /// return both buffers. Bounded by the deepest concurrent overflow
    /// nesting, so bounded+sharded streams stop paying one allocation per
    /// overflowed tag.
    spare_literals: Vec<String>,
    root_seen: bool,
    root_done: bool,
    /// Recorded position of the most recently delivered event.
    last_pos: Position,
    current: CurrentEvent,
    // Telemetry (every field below is zero-sized or empty when the
    // `telemetry` feature is off).
    /// The pipeline epoch: copies go to every worker so all timeline
    /// points read off one monotonic axis. Reset when workers launch.
    epoch: Stopwatch,
    /// Completed shard lanes, in replay order.
    lanes: Vec<ShardLane>,
    /// Scanner counters merged across exhausted shards.
    scan_tel: ScanCounters,
    /// Reader counters merged across exhausted shards.
    reader_tel: ReaderCounters,
    /// Pipeline lifecycle journal (activations, exhaustions).
    journal: Journal,
}

const START_POS: Position = Position {
    offset: 0,
    line: 1,
    column: 1,
};

impl ShardedReader {
    /// Creates a sharded reader over `input` with a fresh symbol table.
    pub fn new(input: Vec<u8>, config: ShardConfig) -> Self {
        Self::with_symbols(input, config, SymbolTable::new())
    }

    /// Creates a sharded reader whose interner is seeded with `symbols` —
    /// the sharded analogue of [`flux_xml::XmlReader::with_symbols`]. Seed
    /// with `flux_xsax::seeded_symbols(&dtd)` to feed
    /// `XsaxParser::from_source`.
    pub fn with_symbols(input: Vec<u8>, config: ShardConfig, symbols: SymbolTable) -> Self {
        Self::build(SourceKind::Buffered(Arc::new(input)), config, symbols)
    }

    /// [`ShardedReader::with_symbols`] over an already-shared buffer,
    /// without copying it — the zero-copy handoff for
    /// `flux_xml::input::ResolvedInput::Bytes`.
    pub fn with_shared_bytes(
        input: Arc<Vec<u8>>,
        config: ShardConfig,
        symbols: SymbolTable,
    ) -> Self {
        Self::build(SourceKind::Buffered(input), config, symbols)
    }

    /// Creates a sharded reader over an unbounded byte stream with a fresh
    /// symbol table — streamed ingestion ([`crate`] docs): constant memory
    /// regardless of document size, same event stream, verdicts and error
    /// positions as the buffered and sequential paths.
    pub fn from_stream(src: impl Read + Send + 'static, config: ShardConfig) -> Self {
        Self::from_stream_with_symbols(src, config, SymbolTable::new())
    }

    /// [`ShardedReader::from_stream`] with a seeded interner.
    pub fn from_stream_with_symbols(
        src: impl Read + Send + 'static,
        config: ShardConfig,
        symbols: SymbolTable,
    ) -> Self {
        Self::build(SourceKind::Stream(Some(Box::new(src))), config, symbols)
    }

    fn build(input: SourceKind, config: ShardConfig, symbols: SymbolTable) -> Self {
        let seed_len = symbols.len();
        ShardedReader {
            input,
            config,
            symbols,
            seed_len,
            started: false,
            total_shards: 0,
            rx: None,
            chunk_rx: None,
            parked: BTreeMap::new(),
            next_shard: 0,
            active: None,
            chunk_base: START_POS,
            emitted_start: false,
            finished: false,
            stack: Vec::new(),
            overflow_stack: Vec::new(),
            spare_literals: Vec::new(),
            root_seen: false,
            root_done: false,
            last_pos: START_POS,
            current: CurrentEvent::None,
            epoch: Stopwatch::start(),
            lanes: Vec::new(),
            scan_tel: ScanCounters::default(),
            reader_tel: ReaderCounters::default(),
            journal: Journal::default(),
        }
    }

    /// Slurps `src` into a buffer and shards it with the up-front
    /// splitter. Prefer [`ShardedReader::from_stream`], which never
    /// materialises the document; this constructor remains for callers
    /// that want the buffered splitter's exact N-way chunking.
    pub fn from_reader(mut src: impl Read, config: ShardConfig) -> Result<Self> {
        let mut input = Vec::new();
        src.read_to_end(&mut input)?;
        Ok(Self::new(input, config))
    }

    /// The shared symbol table: seed symbols plus every name the shards
    /// encountered, re-interned into one namespace (merged shard by shard
    /// as replay reaches them).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of shards actually used: the up-front chunk count (buffered)
    /// or the chunks dispatched so far (streamed). Zero until the first
    /// pull (the parallel parse launches lazily).
    pub fn shard_count(&self) -> usize {
        self.total_shards
    }

    /// The recorded source position of the most recently delivered event —
    /// exactly the position the sequential reader would report at the same
    /// point in the stream (offset, line and column).
    pub fn position(&self) -> Position {
        self.last_pos
    }

    /// Splits the input, launches one parsing thread per chunk `1..N`, and
    /// parses chunk `0` on the current thread — the consumer cannot replay
    /// anything before chunk 0's tape exists, so parsing it inline wastes
    /// no overlap (and a single-shard run stays thread- and channel-free).
    /// Workers send finished tapes over a channel sized to the shard
    /// count, so no worker ever blocks on a slow consumer.
    fn start_workers(&mut self) {
        self.started = true;
        let buf = match &self.input {
            SourceKind::Buffered(b) => Arc::clone(b),
            SourceKind::Stream(_) => unreachable!("buffered launch on a streamed source"),
        };
        let max_by_size = (buf.len() / self.config.min_shard_bytes.max(1)).max(1);
        let requested = self.config.shards.clamp(1, max_by_size);
        let points = splitter::split_points(&buf, requested);
        self.total_shards = points.len();
        // The epoch starts when the pipeline does; telemetry stores are
        // preallocated here, before any replay, so the steady state
        // allocates nothing (all of this folds away when telemetry is
        // off: the stopwatch reads no clock and the vectors hold ZSTs).
        self.epoch = Stopwatch::start();
        self.lanes = Vec::with_capacity(self.total_shards);
        self.journal = Journal::with_capacity(2 * self.total_shards + 2);
        let reader_config = self.config.reader_config();
        let (tx, rx) = sync_channel(points.len());
        for (i, &start) in points.iter().enumerate().skip(1) {
            let end = points.get(i + 1).copied().unwrap_or(buf.len());
            let input = Arc::clone(&buf);
            let seed = self.symbols.clone();
            let cfg = reader_config.clone();
            let tx = tx.clone();
            let epoch = self.epoch;
            std::thread::spawn(move || {
                let tape = parse_fragment(&input[start..end], &cfg, &seed, epoch);
                // The consumer may have been dropped; parsing work is
                // simply discarded then.
                let _ = tx.send((i, tape));
            });
        }
        drop(tx);
        self.rx = Some(rx);
        let end = points.get(1).copied().unwrap_or(buf.len());
        let tape0 = parse_fragment(&buf[..end], &reader_config, &self.symbols, self.epoch);
        self.parked.insert(0, tape0);
    }

    /// Launches the streamed pipeline: dispatcher + worker pool
    /// ([`stream::start_stream`]). Chunk count is unknown up front;
    /// `total_shards` grows as chunks are activated.
    fn start_streaming(&mut self, source: Box<dyn Read + Send>) {
        self.started = true;
        self.total_shards = 0;
        self.epoch = Stopwatch::start();
        self.lanes = Vec::new();
        self.journal = Journal::with_capacity(16);
        let launch = StreamLaunch {
            source,
            reader_config: self.config.reader_config(),
            seed: self.symbols.clone(),
            epoch: self.epoch,
            workers: self.config.shards.max(1),
            chunk_bytes: self.config.chunk_bytes,
            segment_events: self.config.segment_events,
            segment_bytes: self.config.segment_bytes,
            segment_queue: self.config.segment_queue,
            budget: self.config.budget.clone(),
        };
        self.chunk_rx = Some(start_stream(launch));
    }

    /// Blocks until shard `index`'s tape is available. Out-of-order
    /// arrivals are parked; [`ReplayMode::Joined`] drains every worker
    /// first (the barrier).
    ///
    /// Telemetry: the blocking-receive time (including the Joined drain)
    /// is charged to the requested shard's lane, and the channel-dwell
    /// span (tape ready → this pickup) is stamped from the shared epoch.
    fn take_shard(&mut self, index: usize) -> ShardTape {
        let wait = Stopwatch::start();
        let mut stalls = 0u64;
        if self.config.mode == ReplayMode::Joined {
            if let Some(rx) = self.rx.take() {
                stalls += 1;
                while let Ok((i, tape)) = rx.recv() {
                    self.parked.insert(i, tape);
                }
            }
        }
        loop {
            if let Some(mut tape) = self.parked.remove(&index) {
                tape.lane.recv_stall_ns(wait.elapsed_ns());
                tape.lane.recv_stalls(stalls);
                tape.lane
                    .dwell_ns(self.epoch.elapsed_ns().saturating_sub(tape.ready_at_ns));
                return tape;
            }
            match self.rx.as_ref().map(|rx| rx.recv()) {
                Some(Ok((i, tape))) => {
                    stalls += 1;
                    self.parked.insert(i, tape);
                }
                // All senders gone yet the shard never arrived: a worker
                // died without delivering.
                _ => panic!("shard worker panicked"),
            }
        }
    }

    /// Interns chunk-local names into the merged namespace (bounded when
    /// [`ShardConfig::max_symbols`] caps the table).
    fn merge_names(&mut self, names: &[String]) -> Vec<Symbol> {
        names
            .iter()
            .map(|n| match self.config.max_symbols {
                None => self.symbols.intern(n),
                Some(cap) => self.symbols.intern_bounded(n, cap),
            })
            .collect()
    }

    /// Buffered activation: takes the next up-front chunk's tape. Returns
    /// `false` when every chunk has been replayed.
    fn activate_buffered(&mut self) -> bool {
        if self.next_shard >= self.total_shards {
            return false;
        }
        let mut shard = self.take_shard(self.next_shard);
        self.journal
            .record("shard_activated", self.next_shard as u64);
        self.next_shard += 1;
        let is_final_chunk = self.next_shard >= self.total_shards;
        let cum_names = std::mem::take(&mut shard.new_names);
        let remap = self.merge_names(&cum_names);
        self.active = Some(ActiveShard {
            shard,
            remap,
            cum_names,
            base: self.chunk_base,
            next_event: 0,
            activated_at_ns: self.epoch.elapsed_ns(),
            is_final_chunk,
            seg_rx: None,
            seg_last: true,
            bytes: None,
            pending_seg: None,
            charge: None,
            tape_charge: None,
        });
        true
    }

    /// Streamed activation: receives the next chunk handle (in dispatch
    /// order) and its first tape segment. Returns `false` at end of input;
    /// an I/O error from the byte source is terminal.
    fn activate_streamed(&mut self) -> Result<bool> {
        let Some(rx) = self.chunk_rx.as_ref() else {
            return Ok(false);
        };
        let handle = match rx.recv() {
            // Dispatcher done: every chunk has been delivered.
            Err(_) => {
                self.chunk_rx = None;
                return Ok(false);
            }
            Ok(ChunkMsg::Io(e)) => {
                self.chunk_rx = None;
                self.finished = true;
                return Err(e.into());
            }
            Ok(ChunkMsg::Chunk(handle)) => handle,
        };
        let mut seg = handle
            .seg_rx
            .recv()
            .unwrap_or_else(|_| panic!("shard worker panicked"));
        self.journal
            .record("shard_activated", self.next_shard as u64);
        self.next_shard += 1;
        self.total_shards += 1;
        let cum_names = std::mem::take(&mut seg.tape.new_names);
        let remap = self.merge_names(&cum_names);
        self.active = Some(ActiveShard {
            shard: seg.tape,
            remap,
            cum_names,
            base: self.chunk_base,
            next_event: 0,
            activated_at_ns: self.epoch.elapsed_ns(),
            is_final_chunk: handle.is_final,
            seg_rx: Some(handle.seg_rx),
            seg_last: seg.last,
            bytes: Some(handle.bytes),
            pending_seg: None,
            charge: handle.charge,
            tape_charge: seg.charge,
        });
        Ok(true)
    }

    /// Installs the next link of a streamed chunk's segment chain: extends
    /// the cumulative remap with the segment's incremental names and swaps
    /// the tapes (releasing the replayed segment's budget charge).
    fn install_next_segment(&mut self) {
        let mut a = self.active.take().expect("active shard ensured");
        let mut seg = a.pending_seg.take().unwrap_or_else(|| {
            a.seg_rx
                .as_ref()
                .expect("streamed chunk has a segment channel")
                .recv()
                .unwrap_or_else(|_| panic!("shard worker panicked"))
        });
        let incremental = std::mem::take(&mut seg.tape.new_names);
        let mut merged = self.merge_names(&incremental);
        a.remap.append(&mut merged);
        a.cum_names.extend(incremental);
        a.shard = seg.tape;
        a.seg_last = seg.last;
        a.tape_charge = seg.charge;
        a.next_event = 0;
        self.active = Some(a);
    }

    fn wf(&self, message: impl Into<String>, pos: Position) -> XmlError {
        XmlError::WellFormedness {
            message: message.into(),
            pos,
        }
    }

    /// Advances `pos` over literal whitespace in the original input with
    /// the sequential scanner's accounting — the skip the prolog/epilog
    /// state performs before rejecting top-level character data. Replaying
    /// it here keeps the merger's error byte-exact even when the offending
    /// text run starts with whitespace (or whitespace produced by entities,
    /// which the scanner does *not* skip: only literal bytes qualify).
    fn skip_input_whitespace(&self, mut pos: Position) -> Position {
        // Buffered mode indexes the whole input at the global offset;
        // streamed mode indexes the active chunk's bytes (safe: text runs
        // never straddle chunk seams, so the run ends inside the chunk).
        let (bytes, chunk_start): (&[u8], u64) = match &self.input {
            SourceKind::Buffered(buf) => (buf, 0),
            SourceKind::Stream(_) => match self.active.as_ref() {
                Some(a) => match a.bytes.as_deref() {
                    Some(b) => (b, a.base.offset),
                    None => return pos,
                },
                None => return pos,
            },
        };
        while let Some(&b) = bytes.get((pos.offset - chunk_start) as usize) {
            if !matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                break;
            }
            pos.offset += 1;
            if b == b'\n' {
                pos.line += 1;
                pos.column = 1;
            } else {
                pos.column += 1;
            }
        }
        pos
    }

    /// Advances to the next replayed event — the zero-copy pull API. The
    /// first call launches the parallel parse.
    pub fn advance(&mut self) -> Result<bool> {
        if self.finished {
            return Ok(false);
        }
        if !self.started {
            let src = match &mut self.input {
                SourceKind::Buffered(_) => None,
                SourceKind::Stream(s) => Some(s.take().expect("stream launched once")),
            };
            match src {
                None => self.start_workers(),
                Some(s) => self.start_streaming(s),
            }
        }
        if !self.emitted_start {
            self.emitted_start = true;
            self.current = CurrentEvent::Synthetic(RawEventKind::StartDocument);
            return Ok(true);
        }
        loop {
            if self.active.is_none() {
                let activated = match &self.input {
                    SourceKind::Buffered(_) => self.activate_buffered(),
                    SourceKind::Stream(_) => self.activate_streamed()?,
                };
                if !activated {
                    // End of the tape: the epilog checks.
                    self.finished = true;
                    self.last_pos = self.chunk_base;
                    if !self.root_seen {
                        return Err(XmlError::UnexpectedEof {
                            expected: "root element",
                            pos: self.chunk_base,
                        });
                    }
                    if !self.stack.is_empty() {
                        return Err(XmlError::UnexpectedEof {
                            expected: "closing tags for open elements",
                            pos: self.chunk_base,
                        });
                    }
                    self.current = CurrentEvent::Synthetic(RawEventKind::EndDocument);
                    return Ok(true);
                }
            }

            // Tape exhausted: chain to the chunk's next segment (streamed),
            // or surface the chunk's terminal error (after its valid
            // prefix — the sequential delivery order) and move to the next
            // chunk.
            let (exhausted, chained) = {
                let a = self.active.as_ref().expect("active shard ensured");
                let ex = a.next_event >= a.shard.tape.len();
                (ex, ex && !a.seg_last)
            };
            if chained {
                self.install_next_segment();
                continue;
            }
            if exhausted {
                let mut a = self.active.take().expect("active shard ensured");
                // Close this shard's lane: replay span, then fold its
                // counters into the pipeline totals (merge-at-join).
                a.shard
                    .lane
                    .replay_ns(self.epoch.elapsed_ns().saturating_sub(a.activated_at_ns));
                self.scan_tel.merge(&a.shard.scan);
                self.reader_tel.merge(&a.shard.reader);
                self.lanes.push(a.shard.lane);
                self.journal
                    .record("shard_exhausted", (self.next_shard - 1) as u64);
                if let Some(err) = a.shard.error.take() {
                    self.finished = true;
                    return Err(compose_error(err, a.base));
                }
                self.chunk_base = compose(a.base, a.shard.end_pos);
                continue;
            }

            let (i, kind, pos, start, name, mut literal) = {
                let a = self.active.as_mut().expect("active shard ensured");
                let i = a.next_event;
                a.next_event += 1;
                let kind = a.shard.tape.kind(i);
                // Resolved lazily enough: only element events use it.
                let name = SymbolRemap::new(self.seed_len, &a.remap).resolve(a.shard.tape.name(i));
                // An element name the bounded merged table overflowed: its
                // literal spelling (the view's side channel) feeds the
                // balance check and error messages below.
                let literal = if name == SymbolTable::OVERFLOW
                    && matches!(kind, RawEventKind::StartElement | RawEventKind::EndElement)
                {
                    let v = a.shard.tape.view(
                        i,
                        SymbolRemap::with_names(self.seed_len, &a.remap, &a.cum_names),
                    );
                    let mut buf = self.spare_literals.pop().unwrap_or_default();
                    buf.clear();
                    buf.push_str(v.target());
                    Some(buf)
                } else {
                    None
                };
                (
                    i,
                    kind,
                    compose(a.base, a.shard.tape.position(i)),
                    compose(a.base, a.shard.tape.start_position(i)),
                    name,
                    literal,
                )
            };
            // Re-check the document-level rules the fragment readers
            // relaxed, at exactly the event where the sequential reader
            // checks them.
            match kind {
                RawEventKind::StartElement | RawEventKind::EndElement => {
                    if kind == RawEventKind::StartElement {
                        if self.stack.is_empty() && self.root_done {
                            self.finished = true;
                            // The sequential reader rejects a second root
                            // before consuming any of its tag: error at the
                            // construct's first byte.
                            return Err(self.wf("multiple root elements", start));
                        }
                        if self.stack.len() >= self.config.max_depth {
                            self.finished = true;
                            let message = format!(
                                "element nesting deeper than the configured limit of {}",
                                self.config.max_depth
                            );
                            return Err(self.wf(message, pos));
                        }
                        if name == SymbolTable::OVERFLOW {
                            self.overflow_stack.push(literal.take().unwrap_or_default());
                        }
                        self.stack.push(name);
                        self.root_seen = true;
                    } else {
                        // Global tag balance, checked at the end tag just
                        // like the sequential reader. Two overflowed names
                        // only match when their literal spellings agree.
                        let found = literal.as_deref();
                        match self.stack.pop() {
                            Some(open) if open == name => {
                                if name == SymbolTable::OVERFLOW {
                                    let open_lit =
                                        self.overflow_stack.pop().expect("overflow name on stack");
                                    let found = found.unwrap_or_default();
                                    if open_lit != found {
                                        self.finished = true;
                                        let message = format!(
                                            "mismatched end tag: expected </{open_lit}>, found </{found}>"
                                        );
                                        return Err(self.wf(message, pos));
                                    }
                                    self.spare_literals.push(open_lit);
                                }
                            }
                            Some(open) => {
                                self.finished = true;
                                let open_name = if open == SymbolTable::OVERFLOW {
                                    self.overflow_stack.pop().expect("overflow name on stack")
                                } else {
                                    self.symbols.name(open).to_string()
                                };
                                let message = format!(
                                    "mismatched end tag: expected </{}>, found </{}>",
                                    open_name,
                                    found.unwrap_or_else(|| self.symbols.name(name))
                                );
                                return Err(self.wf(message, pos));
                            }
                            None => {
                                self.finished = true;
                                let message = format!(
                                    "end tag </{}> with no open element",
                                    found.unwrap_or_else(|| self.symbols.name(name))
                                );
                                return Err(self.wf(message, pos));
                            }
                        }
                        if self.stack.is_empty() {
                            self.root_done = true;
                        }
                        if let Some(buf) = literal.take() {
                            self.spare_literals.push(buf);
                        }
                    }
                }
                RawEventKind::Text if !self.stack.is_empty() => {
                    // A final-chunk text run that consumed the input right
                    // up to end-of-file (recorded position == chunk end;
                    // trailing suppressed comments/PIs would have moved the
                    // end past it, and a trailing parse error voids the
                    // comparison). With elements still open, the sequential
                    // reader raises the unclosed-elements error *without*
                    // delivering the run — the fragment worker delivered it
                    // only because more input could have followed in a next
                    // chunk, and there is none. Suppress it so the partial
                    // stream stays byte-exact sequential.
                    //
                    // In streamed mode the current segment may not be the
                    // chunk's last: look one segment ahead. An intermediate
                    // segment is only ever shipped full, so "this text is
                    // the chunk's final event" shows up as an *empty* last
                    // segment whose end position equals the run's end.
                    let trailing_at_eof = {
                        let a = self.active.as_mut().expect("active shard ensured");
                        a.is_final_chunk
                            && a.next_event >= a.shard.tape.len()
                            && if a.seg_last {
                                a.shard.error.is_none()
                                    && a.shard.tape.position(i).offset == a.shard.end_pos.offset
                            } else {
                                if a.pending_seg.is_none() {
                                    let seg = a
                                        .seg_rx
                                        .as_ref()
                                        .expect("streamed chunk has a segment channel")
                                        .recv()
                                        .unwrap_or_else(|_| panic!("shard worker panicked"));
                                    a.pending_seg = Some(seg);
                                }
                                let p = a.pending_seg.as_ref().expect("just installed");
                                p.last
                                    && p.tape.tape.is_empty()
                                    && p.tape.error.is_none()
                                    && a.shard.tape.position(i).offset == p.tape.end_pos.offset
                            }
                    };
                    if trailing_at_eof {
                        self.finished = true;
                        let a = self.active.as_ref().expect("active shard ensured");
                        let end_pos = match a.pending_seg.as_ref() {
                            Some(p) => p.tape.end_pos,
                            None => a.shard.end_pos,
                        };
                        return Err(XmlError::UnexpectedEof {
                            expected: "closing tags for open elements",
                            pos: compose(a.base, end_pos),
                        });
                    }
                }
                RawEventKind::Text if self.stack.is_empty() => {
                    let (whitespace, synthetic) = {
                        let a = self.active.as_ref().expect("active shard ensured");
                        let v = a.shard.tape.view(
                            i,
                            SymbolRemap::with_names(self.seed_len, &a.remap, &a.cum_names),
                        );
                        (v.is_whitespace_text(), v.is_text_synthetic())
                    };
                    if whitespace && !synthetic {
                        // Literal prolog/epilog whitespace: the sequential
                        // reader skips it silently. Whitespace produced by
                        // entity references or CDATA does NOT qualify —
                        // sequentially that is character data outside the
                        // root, an error.
                        continue;
                    }
                    self.finished = true;
                    let message = if self.root_seen {
                        "character data after the root element"
                    } else {
                        "character data before the root element"
                    };
                    // The sequential prolog/epilog state skips literal
                    // whitespace and errors at the first byte it cannot:
                    // replay that skip over the original input.
                    let at = self.skip_input_whitespace(start);
                    return Err(self.wf(message, at));
                }
                RawEventKind::DoctypeDecl if self.root_seen => {
                    self.finished = true;
                    // Rejected at the `<` of `<!DOCTYPE`, like the
                    // sequential reader.
                    return Err(self.wf(
                        "DOCTYPE declaration after the root element has started",
                        start,
                    ));
                }
                _ => {}
            }
            self.last_pos = pos;
            self.current = CurrentEvent::Tape;
            return Ok(true);
        }
    }

    /// A zero-copy view of the event the last [`ShardedReader::advance`]
    /// produced: payloads borrow the shard's tape arena. After `advance`
    /// returned `Ok(false)` or an error, the view is a payload-free
    /// placeholder — never a panic.
    pub fn view(&self) -> RawEventRef<'_> {
        match self.current {
            CurrentEvent::Synthetic(kind) => RawEventRef::bare(kind),
            CurrentEvent::Tape => match self.active.as_ref() {
                Some(a) => a.shard.tape.view(
                    a.next_event - 1,
                    SymbolRemap::with_names(self.seed_len, &a.remap, &a.cum_names),
                ),
                // A terminal error already dropped the shard.
                None => RawEventRef::bare(RawEventKind::EndDocument),
            },
            CurrentEvent::None => RawEventRef::bare(RawEventKind::StartDocument),
        }
    }

    /// Pulls the next event into the caller-owned `ev` — the copying
    /// compatibility wrapper over [`ShardedReader::advance`] /
    /// [`ShardedReader::view`].
    pub fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        <Self as EventSource>::next_into(self, ev)
    }

    /// Appends the merged `scanner`/`reader` stages and the
    /// `shard_pipeline` timeline (one child stage per shard lane, plus
    /// the lifecycle journal) to `report`. Stages are appended empty when
    /// the `telemetry` feature is off, so the report shape is stable.
    pub fn report_into(&self, report: &mut RunReport) {
        let mut scanner = Stage::new("scanner");
        scanner.note("isa", flux_xml::active_isa_name());
        scanner.absorb(self.scan_tel.snapshot());
        report.stage(scanner);
        let mut reader = Stage::new("reader");
        reader.absorb(self.reader_tel.snapshot());
        report.stage(reader);
        let mut pipeline = Stage::new("shard_pipeline");
        pipeline.counter("shards", self.total_shards as u64);
        pipeline.note("mode", format!("{:?}", self.config.mode));
        pipeline.note(
            "ingest",
            match &self.input {
                SourceKind::Buffered(_) => "buffered",
                SourceKind::Stream(_) => "streamed",
            },
        );
        let mut totals = ShardLane::default();
        for lane in &self.lanes {
            totals.merge(lane);
        }
        pipeline.absorb(totals.snapshot());
        for (i, lane) in self.lanes.iter().enumerate() {
            let mut child = Stage::new(format!("shard_{i}"));
            child.absorb(lane.snapshot());
            pipeline.children.push(child);
        }
        for ev in self.journal.events() {
            pipeline.events.push((ev.seq, ev.tag, ev.value));
        }
        report.stage(pipeline);
    }

    /// The completed per-shard timeline lanes (replay order). Empty until
    /// shards are exhausted, and with telemetry off each lane is a
    /// zero-sized stub — intended for tests and the report builder.
    pub fn lanes(&self) -> &[ShardLane] {
        &self.lanes
    }

    /// The merged scanner counters across exhausted shards.
    pub fn scan_telemetry(&self) -> ScanCounters {
        self.scan_tel
    }

    /// The merged reader counters across exhausted shards.
    pub fn reader_telemetry(&self) -> ReaderCounters {
        self.reader_tel
    }
}

impl EventSource for ShardedReader {
    fn advance(&mut self) -> Result<bool> {
        ShardedReader::advance(self)
    }

    fn view(&self) -> RawEventRef<'_> {
        ShardedReader::view(self)
    }

    fn symbols(&self) -> &SymbolTable {
        ShardedReader::symbols(self)
    }

    fn position(&self) -> Position {
        ShardedReader::position(self)
    }

    fn report_into(&self, report: &mut RunReport) {
        ShardedReader::report_into(self, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_xml::{parse_to_events, XmlEvent};

    /// Collects the owned events a sharded reader produces.
    fn sharded_events_mode(doc: &str, shards: usize, mode: ReplayMode) -> Result<Vec<XmlEvent>> {
        // min_shard_bytes = 1 so even tiny unit-test documents shard.
        let mut config = ShardConfig::new(shards);
        config.min_shard_bytes = 1;
        config.mode = mode;
        let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
        let mut ev = RawEvent::new();
        let mut out = Vec::new();
        while reader.next_into(&mut ev)? {
            out.push(ev.to_xml_event(reader.symbols()));
        }
        Ok(out)
    }

    fn assert_equivalent(doc: &str, shards: usize) {
        let sequential = parse_to_events(doc).expect("sequential parse");
        for mode in [ReplayMode::Pipelined, ReplayMode::Joined] {
            let sharded = sharded_events_mode(doc, shards, mode).expect("sharded parse");
            assert_eq!(
                sequential, sharded,
                "doc: {doc}, shards: {shards}, mode: {mode:?}"
            );
        }
    }

    #[test]
    fn matches_sequential_events_small_docs() {
        let docs = [
            "<a/>",
            "<a><b>text</b><c/></a>",
            "<bib><book year=\"1994\"><title>T &amp; U</title></book><book/></bib>",
            "  <r>one<x/>two<y>three</y></r>  ",
            "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]><r><s/></r>",
        ];
        for doc in docs {
            for shards in [1, 2, 3, 8] {
                assert_equivalent(doc, shards);
            }
        }
    }

    #[test]
    fn matches_sequential_on_deep_nesting_across_seams() {
        // Elements that straddle several shard boundaries.
        let mut doc = String::new();
        for i in 0..40 {
            doc.push_str(&format!("<d{i}>filler text to widen the chunk "));
        }
        for i in (0..40).rev() {
            doc.push_str(&format!("</d{i}>"));
        }
        for shards in [2, 3, 8] {
            assert_equivalent(&doc, shards);
        }
    }

    #[test]
    fn shard_count_reported_after_first_pull() {
        let doc = "<a>".to_string() + &"<b>x</b>".repeat(500) + "</a>";
        let mut config = ShardConfig::new(4);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(doc.into_bytes(), config);
        assert_eq!(reader.shard_count(), 0);
        let mut ev = RawEvent::new();
        assert!(reader.next_into(&mut ev).unwrap());
        assert_eq!(reader.shard_count(), 4);
    }

    #[test]
    fn new_names_from_different_shards_merge_consistently() {
        // The same late name in two different shards must resolve to one
        // merged symbol even though the shard-local indices differ.
        let mut doc = String::from("<r>");
        doc.push_str(&"<common>x</common>".repeat(50));
        doc.push_str("<zeta/>");
        doc.push_str(&"<common>x</common>".repeat(50));
        doc.push_str("<zeta/>");
        doc.push_str("</r>");
        let mut config = ShardConfig::new(3);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
        let mut ev = RawEvent::new();
        let mut zeta_syms = Vec::new();
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement && reader.symbols().name(ev.name()) == "zeta"
            {
                zeta_syms.push(ev.name());
            }
        }
        assert_eq!(zeta_syms.len(), 2);
        assert_eq!(zeta_syms[0], zeta_syms[1], "one merged symbol per name");
    }

    #[test]
    fn seeded_symbols_are_preserved() {
        let mut seed = SymbolTable::new();
        let book = seed.intern("book");
        let doc = "<book/>";
        let mut reader =
            ShardedReader::with_symbols(doc.as_bytes().to_vec(), ShardConfig::new(2), seed);
        let mut ev = RawEvent::new();
        let mut seen = None;
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement {
                seen = Some(ev.name());
            }
        }
        assert_eq!(seen, Some(book));
    }

    #[test]
    fn errors_match_sequential_verdicts() {
        let bad_docs = [
            "<a><b></a></b>",    // mismatched
            "<a><b></b>",        // unclosed root
            "<a/><b/>",          // multiple roots
            "hello<a/>",         // text before root
            "<a/>hello",         // text after root
            "",                  // empty
            "&#32;<a/>",         // charref whitespace before root
            "<a/>&#x20;",        // charref whitespace after root
            "<![CDATA[ ]]><a/>", // CDATA whitespace before root
            "<a/><![CDATA[]]>",  // CDATA after root
        ];
        for doc in bad_docs {
            assert!(parse_to_events(doc).is_err(), "sequential accepts {doc:?}");
            for shards in [1, 2, 3] {
                for mode in [ReplayMode::Pipelined, ReplayMode::Joined] {
                    assert!(
                        sharded_events_mode(doc, shards, mode).is_err(),
                        "sharded ({shards}, {mode:?}) accepts {doc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn error_is_terminal_then_eof() {
        let mut config = ShardConfig::new(2);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(b"<a></b>".to_vec(), config);
        let mut ev = RawEvent::new();
        let mut saw_error = false;
        loop {
            match reader.next_into(&mut ev) {
                Ok(true) => {}
                Ok(false) => break,
                Err(_) => saw_error = true,
            }
        }
        assert!(saw_error);
        assert!(!reader.next_into(&mut ev).unwrap());
    }

    /// Asserts that the sharded partial event stream and terminal error
    /// (message *and* position) are byte-exact the sequential reader's,
    /// at several shard counts in both modes.
    fn assert_prefix_and_error_match(doc: &str) {
        let (seq_events, seq_err) = {
            let mut reader = flux_xml::XmlReader::new(doc.as_bytes());
            let mut ev = RawEvent::new();
            let mut events = Vec::new();
            let err = loop {
                match reader.next_into(&mut ev) {
                    Ok(true) => events.push(ev.to_xml_event(reader.symbols())),
                    Ok(false) => panic!("sequential must reject"),
                    Err(e) => break e,
                }
            };
            (events, err)
        };

        for shards in [1, 2, 3, 8] {
            for mode in [ReplayMode::Pipelined, ReplayMode::Joined] {
                let mut config = ShardConfig::new(shards);
                config.min_shard_bytes = 1;
                config.mode = mode;
                let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
                let mut ev = RawEvent::new();
                let mut events = Vec::new();
                let err = loop {
                    match reader.next_into(&mut ev) {
                        Ok(true) => events.push(ev.to_xml_event(reader.symbols())),
                        Ok(false) => panic!("sharded must reject"),
                        Err(e) => break e,
                    }
                };
                assert_eq!(
                    events, seq_events,
                    "partial stream diverged ({shards} shards, {mode:?})"
                );
                assert_eq!(
                    err.to_string(),
                    seq_err.to_string(),
                    "error (incl. position) diverged ({shards} shards, {mode:?})"
                );
            }
        }
    }

    /// The valid prefix is streamed before the error — the sequential
    /// delivery order — and the error position (offset, line, column) is
    /// exactly the sequential reader's.
    #[test]
    fn error_position_and_prefix_match_sequential() {
        // A mismatch deep in the document, behind a newline so line/column
        // composition is exercised.
        let mut doc = String::from("<r>\n");
        for i in 0..40 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>\n"));
        }
        doc.push_str("<y></z></r>");
        assert_prefix_and_error_match(&doc);
    }

    /// Input truncated in the middle of a text run: the sequential reader
    /// raises the unclosed-elements error *without* delivering the run,
    /// and the sharded replay must do the same (the fragment worker
    /// delivers it, because more input could have followed — the merger
    /// suppresses it at real end-of-input).
    #[test]
    fn truncated_inside_text_matches_sequential_prefix() {
        let mut doc = String::from("<r>");
        for i in 0..30 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
        }
        doc.push_str("<open>trailing text with no close");
        assert_prefix_and_error_match(&doc);
        // Whitespace-only trailing run, same rule.
        let mut doc = String::from("<r>");
        for i in 0..30 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
        }
        doc.push_str("<open>   ");
        assert_prefix_and_error_match(&doc);
    }

    /// A text run terminated by a *suppressed* construct (comment, PI)
    /// before end-of-input is a complete run the sequential reader
    /// delivers — the EOF suppression must not swallow it even though it
    /// is the last event on the final shard's tape.
    #[test]
    fn trailing_text_before_suppressed_markup_is_delivered() {
        for tail in ["<!-- a comment -->", "<?pi data?>"] {
            let mut doc = String::from("<r>");
            for i in 0..30 {
                doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
            }
            doc.push_str("<open>trailing text");
            doc.push_str(tail);
            assert_prefix_and_error_match(&doc);
        }
    }

    // ---- streamed ingestion ----

    /// A streamed config tightened so unit-test documents exercise many
    /// chunks and many segments per chunk.
    fn tight_stream_config(shards: usize) -> ShardConfig {
        let mut config = ShardConfig::new(shards);
        config.chunk_bytes = stream::MIN_CHUNK_BYTES;
        config.segment_events = 7;
        config.segment_queue = 2;
        config
    }

    fn streamed_run(doc: &str, config: ShardConfig) -> (Vec<XmlEvent>, Option<XmlError>) {
        let src = std::io::Cursor::new(doc.as_bytes().to_vec());
        let mut reader = ShardedReader::from_stream(src, config);
        let mut ev = RawEvent::new();
        let mut events = Vec::new();
        loop {
            match reader.next_into(&mut ev) {
                Ok(true) => events.push(ev.to_xml_event(reader.symbols())),
                Ok(false) => return (events, None),
                Err(e) => return (events, Some(e)),
            }
        }
    }

    /// A document large enough to stream through several chunks, with
    /// late names, entities, comments and a multi-line shape.
    fn streaming_doc() -> String {
        let mut doc = String::from("<?xml version=\"1.0\"?>\n<bib>\n");
        for i in 0..800 {
            doc.push_str(&format!(
                "<book year=\"19{:02}\"><title>T {i} &amp; U</title><!-- note --><price>{i}.50</price></book>\n",
                i % 100
            ));
        }
        doc.push_str("</bib>\n");
        doc
    }

    #[test]
    fn streamed_matches_sequential_events() {
        let doc = streaming_doc();
        let sequential = parse_to_events(&doc).expect("sequential parse");
        for shards in [1, 2, 8] {
            let (events, err) = streamed_run(&doc, tight_stream_config(shards));
            assert!(err.is_none(), "streamed run errored: {err:?}");
            assert_eq!(sequential, events, "shards: {shards}");
        }
    }

    #[test]
    fn streamed_matches_buffered_on_small_docs() {
        let docs = [
            "<a/>",
            "<a><b>text</b><c/></a>",
            "  <r>one<x/>two<y>three</y></r>  ",
            "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]><r><s/></r>",
        ];
        for doc in docs {
            let sequential = parse_to_events(doc).expect("sequential parse");
            let (events, err) = streamed_run(doc, tight_stream_config(2));
            assert!(err.is_none(), "doc {doc:?}: {err:?}");
            assert_eq!(sequential, events, "doc: {doc:?}");
        }
    }

    /// Streamed partial stream + terminal error (message *and* position)
    /// are byte-exact the sequential reader's.
    fn assert_streamed_prefix_and_error_match(doc: &str) {
        let (seq_events, seq_err) = {
            let mut reader = flux_xml::XmlReader::new(doc.as_bytes());
            let mut ev = RawEvent::new();
            let mut events = Vec::new();
            let err = loop {
                match reader.next_into(&mut ev) {
                    Ok(true) => events.push(ev.to_xml_event(reader.symbols())),
                    Ok(false) => panic!("sequential must reject"),
                    Err(e) => break e,
                }
            };
            (events, err)
        };
        for shards in [1, 2, 8] {
            let (events, err) = streamed_run(doc, tight_stream_config(shards));
            let err = err.expect("streamed must reject");
            assert_eq!(events, seq_events, "partial stream diverged ({shards})");
            assert_eq!(
                err.to_string(),
                seq_err.to_string(),
                "error (incl. position) diverged ({shards} shards)"
            );
        }
    }

    #[test]
    fn streamed_errors_match_sequential() {
        // Small documents: single chunk, but the full epilog/prolog paths.
        for doc in [
            "<a><b></a></b>",
            "<a/><b/>",
            "hello<a/>",
            "<a/>hello",
            "",
            "&#32;<a/>",
            "<a/>&#x20;",
        ] {
            assert_streamed_prefix_and_error_match(doc);
        }
        // A deep error behind many chunks and newlines.
        let mut doc = String::from("<r>\n");
        for i in 0..600 {
            doc.push_str(&format!("<x{i}>text {i} padding padding padding</x{i}>\n"));
        }
        doc.push_str("<y></z></r>");
        assert_streamed_prefix_and_error_match(&doc);
    }

    /// Input truncated inside a trailing text run: the streamed merger
    /// must suppress the run at real end-of-input exactly like the
    /// buffered one — including when the run is the last event of a
    /// *non-final* segment (the lookahead path).
    #[test]
    fn streamed_truncated_text_matches_sequential() {
        for filler in [30, 600] {
            let mut doc = String::from("<r>");
            for i in 0..filler {
                doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
            }
            doc.push_str("<open>trailing text with no close");
            assert_streamed_prefix_and_error_match(&doc);
        }
        // And a *delivered* trailing run before suppressed markup.
        let mut doc = String::from("<r>");
        for i in 0..600 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
        }
        doc.push_str("<open>trailing text<!-- a comment -->");
        assert_streamed_prefix_and_error_match(&doc);
    }

    #[test]
    fn streamed_budget_tracks_all_pools() {
        let doc = streaming_doc();
        let budget = flux_xml::MemoryBudget::new(64 * 1024 * 1024);
        let mut config = tight_stream_config(2);
        config.budget = Some(Arc::clone(&budget));
        let (events, err) = streamed_run(&doc, config);
        assert!(err.is_none(), "{err:?}");
        assert!(!events.is_empty());
        assert!(
            budget.peak(flux_xml::BudgetKind::Chunk) > 0,
            "chunk pool untracked"
        );
        assert!(
            budget.peak(flux_xml::BudgetKind::Tape) > 0,
            "tape pool untracked"
        );
        assert!(
            budget.peak(flux_xml::BudgetKind::Window) > 0,
            "window pool untracked"
        );
        assert!(budget.peak_total() >= budget.peak(flux_xml::BudgetKind::Chunk));
        budget.check().expect("well under the limit");
        // All charges released: nothing outlives the run.
        for kind in flux_xml::BudgetKind::all() {
            assert_eq!(budget.current(kind), 0, "leaked charge in {}", kind.name());
        }
    }

    #[test]
    fn streamed_seeded_symbols_are_preserved() {
        let mut seed = SymbolTable::new();
        let book = seed.intern("book");
        let doc = streaming_doc();
        let src = std::io::Cursor::new(doc.into_bytes());
        let mut reader = ShardedReader::from_stream_with_symbols(src, tight_stream_config(2), seed);
        let mut ev = RawEvent::new();
        let mut seen = None;
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement && reader.symbols().name(ev.name()) == "book"
            {
                seen = Some(ev.name());
            }
        }
        assert_eq!(seen, Some(book));
        assert!(reader.shard_count() > 1, "doc should span several chunks");
    }

    /// An I/O failure mid-stream surfaces as a terminal error after the
    /// prefix parsed so far.
    #[test]
    fn streamed_io_error_is_terminal() {
        struct FailAfter {
            data: std::io::Cursor<Vec<u8>>,
        }
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.data.read(buf)?;
                if n == 0 {
                    return Err(std::io::Error::other("link dropped"));
                }
                Ok(n)
            }
        }
        let mut doc = String::from("<r>");
        for i in 0..600 {
            doc.push_str(&format!("<x{i}>text {i}</x{i}>"));
        }
        // No closing tag: EOF would also error, but the I/O failure wins.
        let src = FailAfter {
            data: std::io::Cursor::new(doc.into_bytes()),
        };
        let mut reader = ShardedReader::from_stream(src, tight_stream_config(2));
        let mut ev = RawEvent::new();
        let err = loop {
            match reader.next_into(&mut ev) {
                Ok(true) => {}
                Ok(false) => panic!("must surface the I/O error"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, XmlError::Io(_)),
            "expected an I/O error, got {err}"
        );
        assert!(!reader.next_into(&mut ev).unwrap(), "error is terminal");
    }
}
