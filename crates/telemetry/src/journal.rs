//! The bounded ring-buffer event journal.
//!
//! A [`Journal`] records coarse pipeline lifecycle moments — "shard 3's
//! tape is ready", "shard 3 activated for replay" — as `(tag, value)`
//! pairs stamped with a monotonically increasing sequence number. The
//! backing store is allocated once (at [`Journal::with_capacity`]) and
//! never grows: when full, the oldest entry is overwritten, so recording
//! in the steady state costs two stores and never allocates.

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Global record index (keeps ordering across wrap-around; the first
    /// record is 0).
    pub seq: u64,
    /// What happened.
    pub tag: &'static str,
    /// The tagged quantity — a shard index, a byte count, a timestamp.
    pub value: u64,
}

/// A fixed-capacity overwrite-oldest event log (no-op when telemetry is
/// off).
#[cfg(feature = "enabled")]
#[derive(Debug, Default)]
pub struct Journal {
    entries: Vec<JournalEvent>,
    /// Slot the next record lands in once the buffer has wrapped.
    head: usize,
    seq: u64,
}

#[cfg(feature = "enabled")]
impl Journal {
    /// A journal whose backing store is allocated up front; `record`
    /// never allocates after this.
    pub fn with_capacity(cap: usize) -> Self {
        Journal {
            entries: Vec::with_capacity(cap.max(1)),
            head: 0,
            seq: 0,
        }
    }

    /// Appends an entry, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, tag: &'static str, value: u64) {
        let ev = JournalEvent {
            seq: self.seq,
            tag,
            value,
        };
        self.seq += 1;
        if self.entries.len() < self.entries.capacity() {
            self.entries.push(ev);
        } else {
            self.entries[self.head] = ev;
            self.head = (self.head + 1) % self.entries.capacity();
        }
    }

    /// Entries in record order, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.head..]);
        out.extend_from_slice(&self.entries[..self.head]);
        out
    }

    /// Total records ever made (retained entries plus overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq
    }
}

/// A fixed-capacity overwrite-oldest event log (no-op when telemetry is
/// off).
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Default)]
pub struct Journal {}

#[cfg(not(feature = "enabled"))]
impl Journal {
    /// No-op constructor: nothing is allocated when telemetry is off.
    #[inline(always)]
    pub fn with_capacity(cap: usize) -> Self {
        let _ = cap;
        Journal {}
    }

    /// No-op record.
    #[inline(always)]
    pub fn record(&mut self, tag: &'static str, value: u64) {
        let _ = (tag, value);
    }

    /// Always empty when telemetry is off.
    pub fn events(&self) -> Vec<JournalEvent> {
        Vec::new()
    }

    /// Always 0 when telemetry is off.
    pub fn recorded(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_overwrite_keeps_newest() {
        let mut j = Journal::with_capacity(4);
        for i in 0..10 {
            j.record("tick", i);
        }
        let events = j.events();
        if crate::enabled() {
            assert_eq!(j.recorded(), 10);
            assert_eq!(events.len(), 4, "capacity bounds retention");
            let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![6, 7, 8, 9], "oldest first, newest retained");
            assert_eq!(events[3].value, 9);
        } else {
            assert!(events.is_empty());
            assert_eq!(j.recorded(), 0);
        }
    }
}
