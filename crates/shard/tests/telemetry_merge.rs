//! Merge-at-join correctness for the shard pipeline telemetry: per-lane
//! counters harvested from worker threads must fold into pipeline totals
//! that agree with the delivered event stream, at several shard counts.
//!
//! Compiled only with the `telemetry` feature — without it the lanes are
//! zero-sized stubs and there is nothing to check (the zero-alloc suite
//! covers that build instead).
#![cfg(feature = "telemetry")]

use flux_shard::{ShardConfig, ShardedReader};
use flux_telemetry::{RunReport, ShardLane};
use flux_xml::{RawEvent, RawEventKind};

/// A document big enough to shard at min_shard_bytes = 1.
fn document() -> String {
    let mut doc = String::from("<bib>");
    for i in 0..200 {
        doc.push_str(&format!(
            "<book year=\"19{:02}\"><title>Title &amp; no. {i}</title></book>",
            i % 100
        ));
    }
    doc.push_str("</bib>");
    doc
}

/// Drains the reader; returns the number of tape events delivered
/// (excluding the synthesised document brackets).
fn drain(reader: &mut ShardedReader) -> u64 {
    let mut ev = RawEvent::new();
    let mut tape_events = 0;
    while reader.next_into(&mut ev).expect("valid document") {
        if !matches!(
            ev.kind(),
            RawEventKind::StartDocument | RawEventKind::EndDocument
        ) {
            tape_events += 1;
        }
    }
    tape_events
}

fn run(shards: usize) -> (ShardedReader, u64) {
    let mut config = ShardConfig::new(shards);
    config.min_shard_bytes = 1;
    let mut reader = ShardedReader::new(document().into_bytes(), config);
    let delivered = drain(&mut reader);
    (reader, delivered)
}

#[test]
fn lane_counters_merge_to_stream_totals() {
    for shards in [1, 2, 8] {
        let (reader, delivered) = run(shards);
        assert_eq!(
            reader.lanes().len(),
            reader.shard_count(),
            "one lane per shard ({shards} requested)"
        );
        let mut totals = ShardLane::default();
        for lane in reader.lanes() {
            totals.merge(lane);
        }
        // Prolog/epilog whitespace events can be recorded on tapes yet
        // skipped at replay, so the tape total bounds the delivered count.
        assert!(
            totals.events >= delivered,
            "lane events {} must cover the {} delivered ({shards} shards)",
            totals.events,
            delivered
        );
        assert!(totals.tape_bytes > 0, "tapes hold payload bytes");
        assert!(totals.parse_ns > 0, "parse spans are measured");
        assert!(totals.replay_ns > 0, "replay spans are measured");
    }
}

#[test]
fn per_shard_events_are_disjoint_partitions() {
    // The same document parsed at 1 and 8 shards must tape the same
    // number of events — sharding partitions the work, never duplicates
    // or drops it.
    let (one, _) = run(1);
    let (eight, _) = run(8);
    let sum = |r: &ShardedReader| r.lanes().iter().map(|l| l.events).sum::<u64>();
    assert_eq!(sum(&one), sum(&eight));
    assert!(eight.shard_count() > 1, "document must actually shard");
}

#[test]
fn reader_counters_survive_the_thread_join() {
    let (reader, _) = run(8);
    let tags = reader.reader_telemetry();
    let starts = tags.fast_start_tags + tags.slow_start_tags;
    let ends = tags.fast_end_tags + tags.slow_end_tags;
    // 1 root + 200 books + 200 titles.
    assert_eq!(starts, 401, "every start tag counted exactly once");
    assert_eq!(ends, 401, "every end tag counted exactly once");
    assert!(
        tags.entity_unescapes >= 200,
        "each title carries an &amp; reference"
    );
    let scan = reader.scan_telemetry();
    assert!(
        scan.prescan_bytes as usize >= document().len(),
        "every input byte prescanned (counting per-shard overlap)"
    );
}

#[test]
fn report_carries_the_shard_timeline() {
    let (reader, _) = run(2);
    let mut report = RunReport::new();
    reader.report_into(&mut report);
    assert!(report.telemetry);
    let pipeline = report.find("shard_pipeline").expect("pipeline stage");
    assert_eq!(
        pipeline.counter_value("shards"),
        Some(reader.shard_count() as u64)
    );
    assert_eq!(pipeline.children.len(), reader.shard_count());
    for (i, child) in pipeline.children.iter().enumerate() {
        assert_eq!(child.name, format!("shard_{i}"));
        assert!(child.span_value("parse_ns").unwrap_or(0) > 0);
        assert!(child.span_value("replay_ns").unwrap_or(0) > 0);
    }
    // Lifecycle journal: one activation and one exhaustion per shard, in
    // replay order.
    let activations: Vec<u64> = pipeline
        .events
        .iter()
        .filter(|&&(_, tag, _)| tag == "shard_activated")
        .map(|&(_, _, v)| v)
        .collect();
    let expected: Vec<u64> = (0..reader.shard_count() as u64).collect();
    assert_eq!(activations, expected);
    assert!(report.find("scanner").is_some());
    assert!(report.find("reader").is_some());
}
